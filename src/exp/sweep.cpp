#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/registry.h"

namespace hydra::exp {

void SweepSpec::add_utilization_grid(const gen::SyntheticConfig& config,
                                     const std::vector<double>& utilizations) {
  for (const double u : utilizations) {
    SweepPoint point;
    point.synthetic = config;
    point.total_utilization = u;
    points.push_back(std::move(point));
  }
}

void SweepSpec::add_corpus_point(const std::string& path_or_glob, std::string label) {
  SweepPoint point;
  point.files = expand_workload_files(path_or_glob);
  point.label = label.empty() ? path_or_glob : std::move(label);
  points.push_back(std::move(point));
}

std::vector<double> utilization_axis(std::size_t num_cores, std::size_t steps,
                                     double increment) {
  std::vector<double> axis;
  axis.reserve(steps);
  for (std::size_t step = 1; step <= steps; ++step) {
    axis.push_back(increment * static_cast<double>(step) * static_cast<double>(num_cores));
  }
  return axis;
}

std::uint64_t sweep_point_seed(std::uint64_t base_seed, std::size_t point_index) {
  // A distinct splitmix64 domain (the XOR constant) keeps a sweep's point-p
  // stream disjoint from a plain BatchSpec run using the same base seed.
  return instance_seed(base_seed ^ 0xC2B2AE3D27D4EB4FULL, point_index);
}

std::string sweep_cell_key(std::size_t point_index, const std::string& point_label,
                           std::size_t instance_index) {
  return "p" + std::to_string(point_index) + ":" + point_label + ":i" +
         std::to_string(instance_index);
}

std::map<std::string, std::vector<BatchRow>> load_sweep_checkpoint(
    const std::string& path) {
  std::map<std::string, std::vector<BatchRow>> cells;
  std::ifstream in(path);
  if (!in) return cells;  // cold start
  std::string line;
  while (std::getline(in, line)) {
    auto row = parse_jsonl_row(line);
    // Unparseable lines (typically the truncated tail of a killed run) just
    // leave their cell incomplete — it is re-evaluated, not trusted.
    if (!row.has_value() || row->cell.empty()) continue;
    cells[row->cell].push_back(std::move(*row));
  }
  return cells;
}

namespace {

using SchemeSet = std::vector<std::unique_ptr<core::Allocator>>;

/// One (point, instance) unit of the flattened grid — the granularity of
/// work stealing and of resume.
struct SweepUnit {
  std::size_t point = 0;
  BatchItem item;
  const BatchSpec* point_spec = nullptr;       // synthetic/file source
  const core::Instance* preloaded = nullptr;   // preset-instance source
  std::string cell;
  double target_utilization = 0.0;
};

/// Stamps the sweep context onto freshly evaluated (or re-validated cached)
/// rows, so every emission path produces identical bytes.
void stamp_rows(std::vector<BatchRow>& rows, const SweepUnit& unit,
                const std::string& point_label) {
  for (auto& row : rows) {
    row.cell = unit.cell;
    row.point_index = unit.point;
    row.point_label = point_label;
    row.target_utilization = unit.target_utilization;
    row.instance_index = unit.item.index;
    row.instance_label = unit.item.label;
    row.seed = unit.item.seed;
  }
}

/// A checkpointed cell is only spliced in when it provably matches what the
/// current spec would compute: same scheme list in order, same per-instance
/// seed and label, and the full metric set on every validated row.  Anything
/// else (edited spec, different seed, added metric) silently falls back to
/// re-evaluation — resume must never resurrect stale results.
bool cached_cell_matches(const std::vector<BatchRow>& rows, const SweepUnit& unit,
                         const SweepSpec& spec) {
  if (rows.size() != spec.schemes.size()) return false;
  for (std::size_t j = 0; j < rows.size(); ++j) {
    const auto& row = rows[j];
    if (row.scheme != spec.schemes[j]) return false;
    if (row.seed != unit.item.seed || row.instance_label != unit.item.label) return false;
    if (row.instance_index != unit.item.index) return false;
    if (row.status == "ok" && row.feasible && row.validated) {
      if (row.metrics.size() != spec.metrics.size()) return false;
      for (std::size_t k = 0; k < spec.metrics.size(); ++k) {
        if (row.metrics[k].first != spec.metrics[k].name) return false;
      }
    } else if (!row.metrics.empty()) {
      return false;
    }
  }
  return true;
}

struct JoinGuard {
  std::vector<std::thread>& workers;
  ~JoinGuard() {
    for (auto& worker : workers) {
      if (worker.joinable()) worker.join();
    }
  }
};

}  // namespace

Sweep::Sweep(SweepSpec spec) : spec_(std::move(spec)) {
  if (spec_.schemes.empty()) {
    throw std::invalid_argument("sweep needs at least one scheme");
  }
  core::AllocatorRegistry::global().make_all(spec_.schemes);  // typo check
  if (spec_.points.empty()) {
    throw std::invalid_argument("sweep needs at least one point");
  }
  if (spec_.replications == 0) {
    throw std::invalid_argument("sweep needs at least one replication per point");
  }
  // Fix the default labels now: cell keys (and hence resume identity) must
  // not depend on when a caller happens to read them.
  for (auto& point : spec_.points) {
    if (!point.label.empty()) continue;
    if (point.instance.has_value()) {
      point.label = "m=" + std::to_string(point.instance->num_cores) + " case-study";
    } else if (!point.files.empty()) {
      point.label = "files";
    } else {
      point.label = "m=" + std::to_string(point.synthetic.num_cores) +
                    " u=" + format_double(point.total_utilization);
    }
  }
  // Read the checkpoint now so callers can reuse the same path for the
  // (truncating) output sink they open between construction and run().
  if (!spec_.resume_path.empty()) {
    checkpoint_ = load_sweep_checkpoint(spec_.resume_path);
  }
}

SweepSummary Sweep::run(const std::vector<ResultSink*>& sinks) const {
  const auto started = std::chrono::steady_clock::now();

  // Expand the grid into per-point BatchSpecs and the flat unit list.
  std::vector<BatchSpec> point_specs(spec_.points.size());
  std::vector<SweepUnit> units;
  for (std::size_t p = 0; p < spec_.points.size(); ++p) {
    const auto& point = spec_.points[p];
    auto& point_spec = point_specs[p];
    point_spec.synthetic = point.synthetic;
    point_spec.total_utilization = point.total_utilization;
    point_spec.base_seed = sweep_point_seed(spec_.base_seed, p);
    point_spec.max_attempts = spec_.max_attempts;
    if (point.instance.has_value()) {
      SweepUnit unit;
      unit.point = p;
      unit.item.index = 0;
      unit.item.label = "instance";
      unit.preloaded = &*point.instance;
      unit.cell = sweep_cell_key(p, point.label, 0);
      units.push_back(std::move(unit));
      continue;
    }
    if (!point.files.empty()) {
      point_spec.files = point.files;
    } else {
      point_spec.count = spec_.replications;
    }
    for (auto& item : enumerate(point_spec)) {
      SweepUnit unit;
      unit.point = p;
      unit.cell = sweep_cell_key(p, point.label, item.index);
      unit.target_utilization = point.files.empty() ? point.total_utilization : 0.0;
      unit.item = std::move(item);
      unit.point_spec = &point_specs[p];
      units.push_back(std::move(unit));
    }
  }

  SweepSummary summary;
  summary.points = spec_.points.size();
  summary.cells = units.size();

  // Splice in checkpointed cells before any worker starts: resumed units are
  // pre-completed slots in the reorder buffer, not queue entries.
  std::vector<std::vector<BatchRow>> results(units.size());
  std::vector<char> done(units.size(), 0);
  for (std::size_t i = 0; i < units.size() && !checkpoint_.empty(); ++i) {
    const auto found = checkpoint_.find(units[i].cell);
    if (found == checkpoint_.end()) continue;
    if (!cached_cell_matches(found->second, units[i], spec_)) continue;
    results[i] = found->second;
    stamp_rows(results[i], units[i], spec_.points[units[i].point].label);
    done[i] = 1;
    ++summary.resumed_cells;
  }

  std::vector<std::size_t> pending;
  pending.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (!done[i]) pending.push_back(i);
  }

  for (auto* sink : sinks) sink->begin();
  const auto emit = [&](std::vector<BatchRow> rows) {
    for (auto& row : rows) {
      if (row.status == "ok") {
        ++summary.evaluated;
        if (row.feasible && row.validated) ++summary.feasible;
      } else if (row.status == "skipped") {
        ++summary.skipped;
      } else {
        ++summary.errors;
      }
      for (auto* sink : sinks) sink->row(row);
      summary.rows.push_back(std::move(row));
    }
  };

  const auto evaluate_unit = [this](const SweepUnit& unit,
                                    const SchemeSet& schemes) {
    static const BatchSpec kEmptySpec;
    auto rows = evaluate_batch_item(unit.point_spec ? *unit.point_spec : kEmptySpec,
                                    unit.item, unit.preloaded, schemes,
                                    spec_.optimal_budget, spec_.metrics);
    stamp_rows(rows, unit, spec_.points[unit.point].label);
    return rows;
  };

  std::size_t jobs = spec_.jobs;
  if (jobs == 0) jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  jobs = std::min(jobs, std::max<std::size_t>(1, pending.size()));

  if (jobs <= 1) {
    const auto schemes = core::AllocatorRegistry::global().make_all(spec_.schemes);
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (!done[i]) results[i] = evaluate_unit(units[i], schemes);
      emit(std::move(results[i]));
    }
  } else {
    // One queue across every point: `pending` is the work-stealing job list,
    // `results`/`done` the reorder buffer the coordinator drains in grid
    // order — no barrier between utilization points anywhere.
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable ready;

    std::vector<std::thread> workers;
    workers.reserve(jobs);
    JoinGuard join_guard{workers};
    for (std::size_t w = 0; w < jobs; ++w) {
      workers.emplace_back([&] {
        const auto schemes = core::AllocatorRegistry::global().make_all(spec_.schemes);
        for (std::size_t q = next.fetch_add(1); q < pending.size();
             q = next.fetch_add(1)) {
          const std::size_t i = pending[q];
          auto rows = evaluate_unit(units[i], schemes);
          {
            std::lock_guard<std::mutex> lock(mutex);
            results[i] = std::move(rows);
            done[i] = 1;
          }
          ready.notify_one();
        }
      });
    }

    for (std::size_t i = 0; i < units.size(); ++i) {
      std::unique_lock<std::mutex> lock(mutex);
      ready.wait(lock, [&] { return done[i] != 0; });
      auto rows = std::move(results[i]);
      lock.unlock();
      emit(std::move(rows));
    }
  }

  for (auto* sink : sinks) sink->end();
  summary.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - started)
                        .count();
  return summary;
}

}  // namespace hydra::exp
