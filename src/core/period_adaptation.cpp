#include "core/period_adaptation.h"

#include <algorithm>
#include <cmath>

#include "gp/problem.h"
#include "gp/solver.h"
#include "rt/analysis.h"
#include "util/contracts.h"

namespace hydra::core {

namespace {

PeriodAdaptation solve_closed_form(const rt::SecurityTask& task,
                                   const rt::InterferenceBound& bound) {
  PeriodAdaptation out;
  const auto t_min = min_feasible_period(task, bound);
  if (!t_min.has_value()) return out;

  const util::Millis period = std::max(task.period_des, *t_min);
  if (!util::leq_tol(period, task.period_max)) return out;
  // Defensive re-check of Eq. (6) at the chosen period.
  if (!rt::security_schedulable(task, period, bound)) return out;

  out.feasible = true;
  out.period = std::min(period, task.period_max);  // clamp tolerance overshoot
  out.tightness = task.period_des / out.period;
  return out;
}

PeriodAdaptation solve_gp(const rt::SecurityTask& task, const rt::InterferenceBound& bound) {
  PeriodAdaptation out;

  // One-variable GP per the paper's appendix:
  //   min Ts   s.t.  Tdes·Ts⁻¹ ≤ 1,  (1/Tmax)·Ts ≤ 1,
  //                  (Cs + A)·Ts⁻¹ + B ≤ 1.
  gp::GpProblem problem;
  const gp::VarId ts = problem.add_variable("Ts[" + task.name + "]");
  problem.set_objective(gp::Posynomial(problem.monomial(1.0).with(ts, 1.0)));
  problem.add_bounds(ts, task.period_des, task.period_max);

  gp::Posynomial sched = problem.posynomial();
  sched += problem.monomial(task.wcet + bound.const_part).with(ts, -1.0);
  if (bound.util_part > 0.0) sched += problem.monomial(bound.util_part);
  problem.add_constraint_leq1(std::move(sched), "Cs + I(Ts) <= Ts");

  // Start just inside the Tmax bound (the exact corner sits on the box
  // boundary and would trigger the solver's phase-I program needlessly).
  const double start =
      std::max(task.period_des * (1.0 + 1e-9), task.period_max * (1.0 - 1e-6));
  const gp::GpSolver solver;
  const gp::SolveResult sr = solver.solve(problem, std::vector<double>{start});
  if (!sr.ok()) return out;

  out.feasible = true;
  out.period = std::clamp(sr.x[0], task.period_des, task.period_max);
  out.tightness = task.period_des / out.period;
  return out;
}

}  // namespace

std::optional<util::Millis> min_feasible_period(const rt::SecurityTask& task,
                                                const rt::InterferenceBound& bound) {
  const double slack_rate = 1.0 - bound.util_part;
  if (slack_rate <= util::kTimeEpsilon) return std::nullopt;
  return (task.wcet + bound.const_part) / slack_rate;
}

PeriodAdaptation adapt_period(const rt::SecurityTask& task, const rt::InterferenceBound& bound,
                              PeriodSolver solver) {
  rt::validate(task);
  switch (solver) {
    case PeriodSolver::kClosedForm:
      return solve_closed_form(task, bound);
    case PeriodSolver::kGeometricProgram:
      return solve_gp(task, bound);
    case PeriodSolver::kExactRta:
      HYDRA_REQUIRE(false, "kExactRta needs interferer lists; call adapt_period_exact");
  }
  HYDRA_ASSERT(false, "unknown PeriodSolver");
}

PeriodAdaptation adapt_period_exact(const rt::SecurityTask& task,
                                    const std::vector<rt::RtTask>& rt_on_core,
                                    const std::vector<rt::PlacedSecurityTask>& hp_security,
                                    util::Millis blocking) {
  rt::validate(task);
  PeriodAdaptation out;
  const auto response =
      rt::security_response_time(task, task.period_max, rt_on_core, hp_security, blocking);
  if (!response.has_value()) return out;
  out.feasible = true;
  out.period = std::clamp(*response, task.period_des, task.period_max);
  out.tightness = task.period_des / out.period;
  return out;
}

}  // namespace hydra::core
