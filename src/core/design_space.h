// Design-space exploration driver — the workflow the paper's title and
// conclusion describe: "Since we provide comparisons of our solution with two
// extremes — an 'optimal' assignment strategy and isolating all security
// tasks to a single core — we are able to provide valuable hints to designers
// on how to build security into such systems."
//
// `explore_design_space` is now a thin single-instance convenience over the
// pluggable allocation API (core/allocator.h + core/registry.h): it builds
// the paper's scheme line-up, runs `evaluate_scheme` on each, and collects
// the comparison.  Batch sweeps over many instances — with worker threads and
// streaming sinks — live in exp/engine.h.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "core/hydra.h"
#include "core/instance.h"
#include "core/optimal.h"
#include "core/single_core.h"

namespace hydra::core {

struct ExplorationOptions {
  HydraOptions hydra;
  SingleCoreOptions single_core;
  /// The exhaustive comparator is exponential in NS; it is skipped unless
  /// M^NS stays within this budget (0 disables it entirely).
  std::size_t optimal_budget = 4096;
  OptimalOptions optimal;
};

struct ExplorationReport {
  std::vector<DesignPoint> points;

  /// The feasible point with the highest cumulative tightness, if any.
  std::optional<std::size_t> best_index() const;

  /// True iff at least one scheme produced a feasible, validated allocation.
  bool any_feasible() const;
};

/// The paper's scheme line-up for one instance, each entry ready for
/// `evaluate_scheme`: HYDRA in the caller's configuration, HYDRA with exact
/// RTA (unless already requested), SingleCore (when M >= 2), and Optimal
/// (when M^NS fits the budget).  Exposed so callers can inspect or extend the
/// line-up before evaluating.
std::vector<std::unique_ptr<Allocator>> paper_scheme_lineup(
    const Instance& instance, const ExplorationOptions& options = {});

/// Evaluates HYDRA (paper configuration), HYDRA with exact RTA, SingleCore,
/// and — when affordable — the exhaustive Optimal on `instance`.
ExplorationReport explore_design_space(const Instance& instance,
                                       const ExplorationOptions& options = {});

/// Evaluates the registry schemes named in `schemes` (e.g. {"hydra",
/// "single-core", "optimal"}) on `instance`.  Unknown names throw.
ExplorationReport explore_design_space(const Instance& instance,
                                       const std::vector<std::string>& schemes);

}  // namespace hydra::core
