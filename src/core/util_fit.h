// Utilization-aware placement heuristics: place by security-utilization load
// instead of tightness.
//
// HYDRA picks the core on which the candidate task achieves the best
// tightness (an Eq.-(7) solve per core).  The classic bin-packing intuition
// says the *load* should drive placement instead: worst-fit spreads the
// security utilization so every core keeps slack for later tasks, best-fit
// concentrates it to leave whole cores lightly loaded.  Both variants solve
// the same Eq. (7) subproblem for the committed period — only the core choice
// differs — which isolates exactly the placement policy in the Fig.-4
// comparison (vs hydra/least-loaded, which ranks by TOTAL RT + security
// utilization, these rank by the security load alone).
//
// This file is also the worked example of docs/allocator-authoring.md: a
// complete scheme against the core::Allocator contract in ~100 lines.
#pragma once

#include <string>

#include "core/allocator.h"
#include "core/instance.h"
#include "core/period_adaptation.h"

namespace hydra::core {

/// How to rank the feasible cores by their committed security utilization.
enum class UtilFit {
  kWorstFit,  ///< least-loaded core: spread the security load
  kBestFit,   ///< most-loaded feasible core: concentrate the security load
};

struct UtilFitOptions {
  UtilFit fit = UtilFit::kWorstFit;
  PeriodSolver solver = PeriodSolver::kClosedForm;
};

class UtilFitAllocator : public Allocator {
 public:
  explicit UtilFitAllocator(UtilFitOptions options = {})
      : Allocator(options.fit == UtilFit::kWorstFit ? "util/worst-fit"
                                                    : "util/best-fit"),
        options_(options) {}

  /// Security-utilization-driven placement against an externally supplied RT
  /// partition (same contract as HydraAllocator::allocate).
  Allocation allocate(const Instance& instance,
                      const rt::Partition& rt_partition) const override;

  /// Best-fit-partitions the RT tasks over all M cores first.
  Allocation allocate(const Instance& instance) const override;

  std::string describe() const override;

  const UtilFitOptions& options() const { return options_; }

 private:
  UtilFitOptions options_;
};

}  // namespace hydra::core
