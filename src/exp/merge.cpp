#include "exp/merge.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace hydra::exp {

namespace {

/// One accepted row: its raw bytes plus just enough parsed context to key,
/// order, and diagnose it.
struct RowEntry {
  std::string scheme;
  std::string line;
  std::size_t source = 0;  ///< index into the input path list
};

struct CellAcc {
  std::vector<RowEntry> rows;  ///< unique per scheme, encounter order
  std::size_t point = 0;
  std::size_t instance = 0;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open shard checkpoint: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::size_t scheme_position(const std::vector<std::string>& schemes,
                            const std::string& scheme, const std::string& cell) {
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    if (schemes[i] == scheme) return i;
  }
  throw std::runtime_error("merged cell '" + cell + "' has a row for scheme '" +
                           scheme + "', which is not in the shard header's "
                           "scheme list — the checkpoints disagree on the spec");
}

}  // namespace

MergeResult merge_checkpoints(const std::vector<std::string>& paths,
                              const MergeOptions& options) {
  if (paths.empty()) {
    throw std::runtime_error("merge needs at least one shard checkpoint");
  }

  MergeResult result;
  result.shard_files = paths.size();

  std::map<std::string, CellAcc> cells;
  // shard index -> declared cell count, from the headers.
  std::map<std::size_t, std::size_t> declared;
  bool all_have_headers = true;
  std::string headerless_path;

  for (std::size_t f = 0; f < paths.size(); ++f) {
    const auto& path = paths[f];
    const auto lines = read_lines(path);

    std::size_t start = 0;
    if (!lines.empty()) {
      if (auto header = parse_shard_header(lines[0])) {
        start = 1;
        if (!options.expect_fingerprint.empty() &&
            header->fingerprint != options.expect_fingerprint) {
          throw std::runtime_error("shard " + path + " has spec fingerprint " +
                                   header->fingerprint + ", expected " +
                                   options.expect_fingerprint);
        }
        if (result.header.has_value()) {
          if (result.header->fingerprint != header->fingerprint) {
            throw std::runtime_error(
                "spec fingerprint mismatch: " + path + " has " +
                header->fingerprint + ", earlier shards have " +
                result.header->fingerprint + " — these checkpoints belong to "
                "different sweeps");
          }
          if (result.header->shards != header->shards) {
            throw std::runtime_error(
                "shard-count mismatch: " + path + " says " +
                std::to_string(header->shards) + " shards, earlier shards say " +
                std::to_string(result.header->shards));
          }
          if (result.header->schemes != header->schemes) {
            throw std::runtime_error("scheme-list mismatch between " + path +
                                     " and earlier shards");
          }
        }
        const auto [it, inserted] = declared.emplace(header->shard, header->cells);
        if (!inserted && it->second != header->cells) {
          throw std::runtime_error(
              "shard " + std::to_string(header->shard) + " appears twice with "
              "different declared cell counts (" + std::to_string(it->second) +
              " vs " + std::to_string(header->cells) + ")");
        }
        if (!result.header.has_value()) result.header = std::move(*header);
      } else {
        all_have_headers = false;
        if (headerless_path.empty()) headerless_path = path;
      }
    } else {
      all_have_headers = false;
      if (headerless_path.empty()) headerless_path = path;
    }

    for (std::size_t n = start; n < lines.size(); ++n) {
      const auto& line = lines[n];
      const bool last = n + 1 == lines.size();
      if (line.empty() && last) break;  // stray blank tail
      auto row = parse_jsonl_row(line);
      if (!row.has_value()) {
        if (parse_shard_header(line).has_value()) {
          throw std::runtime_error(
              path + ":" + std::to_string(n + 1) + ": shard header in the "
              "middle of a checkpoint — files must be merged, not concatenated");
        }
        if (last) {
          // The write that was in flight when the shard died.
          ++result.torn_lines;
          break;
        }
        throw std::runtime_error(
            path + ":" + std::to_string(n + 1) + ": corrupt checkpoint line "
            "(only a torn FINAL line is tolerated)");
      }
      if (row->cell.empty()) {
        throw std::runtime_error(
            path + ":" + std::to_string(n + 1) + ": row carries no sweep cell "
            "key; only sweep checkpoints can be merged");
      }
      auto& cell = cells[row->cell];
      cell.point = row->point_index;
      cell.instance = row->instance_index;
      bool duplicate = false;
      for (const auto& existing : cell.rows) {
        if (existing.scheme != row->scheme) continue;
        if (existing.line == line) {
          ++result.duplicate_rows;
          duplicate = true;
          break;
        }
        throw std::runtime_error(
            "conflicting duplicate cell '" + row->cell + "': scheme '" +
            row->scheme + "' differs between " + paths[existing.source] +
            " and " + path + " — refusing to pick a side");
      }
      if (!duplicate) cell.rows.push_back(RowEntry{row->scheme, line, f});
    }
  }

  // Completeness is always COMPUTED (the orchestrator's progress loop polls
  // it on partial merges); require_complete only decides whether a hole
  // throws or is reported via MergeResult::complete/incomplete_reason.
  const auto completeness_hole = [&]() -> std::string {
    if (!all_have_headers) {
      return "cannot verify completeness: " + headerless_path + " has no shard "
             "header (merge with allow-partial to union anyway)";
    }
    const std::size_t shards = result.header->shards;
    std::size_t declared_cells = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto it = declared.find(s);
      if (it == declared.end()) {
        return "missing shard " + std::to_string(s) + "/" +
               std::to_string(shards) +
               " (merge with allow-partial to union anyway)";
      }
      declared_cells += it->second;
    }
    if (declared_cells != cells.size()) {
      return "shard headers declare " + std::to_string(declared_cells) +
             " cells but " + std::to_string(cells.size()) + " distinct cells "
             "were merged — a shard checkpoint is truncated or foreign";
    }
    for (const auto& [key, cell] : cells) {
      if (cell.rows.size() != result.header->schemes.size()) {
        return "cell '" + key + "' is incomplete: " +
               std::to_string(cell.rows.size()) + " of " +
               std::to_string(result.header->schemes.size()) + " scheme rows "
               "(torn shard? merge with allow-partial to keep it for --resume)";
      }
    }
    return "";
  };
  result.incomplete_reason = completeness_hole();
  result.complete = result.incomplete_reason.empty();
  if (options.require_complete && !result.complete) {
    throw std::runtime_error(result.incomplete_reason);
  }

  // Canonical output order: grid order across cells (point-major,
  // instance-minor — exactly the single-process emission order), shard-header
  // scheme order within a cell.  Without a header the within-cell encounter
  // order is preserved.
  result.cells.reserve(cells.size());
  for (auto& [key, cell] : cells) {
    if (result.header.has_value()) {
      const auto& schemes = result.header->schemes;
      std::vector<std::size_t> positions;
      positions.reserve(cell.rows.size());
      for (const auto& row : cell.rows) {
        positions.push_back(scheme_position(schemes, row.scheme, key));
      }
      std::vector<std::size_t> order(cell.rows.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&positions](std::size_t a, std::size_t b) {
                         return positions[a] < positions[b];
                       });
      std::vector<RowEntry> sorted;
      sorted.reserve(cell.rows.size());
      for (const std::size_t i : order) sorted.push_back(std::move(cell.rows[i]));
      cell.rows = std::move(sorted);
    }
    MergedCell merged;
    merged.key = key;
    merged.point_index = cell.point;
    merged.instance_index = cell.instance;
    merged.lines.reserve(cell.rows.size());
    for (auto& row : cell.rows) merged.lines.push_back(std::move(row.line));
    result.rows += merged.lines.size();
    result.cells.push_back(std::move(merged));
  }
  std::stable_sort(result.cells.begin(), result.cells.end(),
                   [](const MergedCell& a, const MergedCell& b) {
                     if (a.point_index != b.point_index) {
                       return a.point_index < b.point_index;
                     }
                     if (a.instance_index != b.instance_index) {
                       return a.instance_index < b.instance_index;
                     }
                     return a.key < b.key;
                   });
  return result;
}

void write_merged(const MergeResult& result, std::ostream& out) {
  for (const auto& cell : result.cells) {
    for (const auto& line : cell.lines) out << line << '\n';
  }
}

}  // namespace hydra::exp
