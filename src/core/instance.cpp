#include "core/instance.h"

#include "rt/priority.h"
#include "sec/tightness.h"
#include "util/contracts.h"

namespace hydra::core {

void Instance::validate() const {
  HYDRA_REQUIRE(num_cores >= 1, "instance needs at least one core");
  rt::validate(rt_tasks);
  rt::validate(security_tasks);
}

double Allocation::cumulative_tightness(const std::vector<rt::SecurityTask>& tasks) const {
  if (!feasible) return 0.0;
  HYDRA_REQUIRE(placements.size() == tasks.size(), "placement/task size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    acc += tasks[i].weight * sec::tightness(tasks[i], placements[i].period);
  }
  return acc;
}

std::vector<std::size_t> Allocation::security_on_core(std::size_t core) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    if (placements[i].core == core) out.push_back(i);
  }
  return out;
}

Allocation infeasible_allocation(std::size_t task_index, std::string reason) {
  Allocation a;
  a.feasible = false;
  a.failed_task = task_index;
  a.failure_reason = std::move(reason);
  return a;
}

Instance with_priority_weights(Instance instance) {
  const auto weights = rt::priority_weights(instance.security_tasks);
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    instance.security_tasks[s].weight = weights[s];
  }
  return instance;
}

}  // namespace hydra::core
