// hydra_swarm: shard orchestrator + allocation-service front end.
//
// Three subcommands (the first positional picks the mode):
//
//   sweep — fan a sharded sweep command out over N local worker processes,
//   restart the dead and the wedged (bounded retries, exponential backoff),
//   surface live partials, and emit a final merged stream byte-identical to
//   the single-process run:
//
//     hydra_swarm sweep --shards 3 --dir /tmp/swarm --out merged.jsonl
//         -- ./build/bench_fig2_acceptance --replications 20
//
//   Everything after `--` is the worker command; the orchestrator appends
//   `--shard i/N --out <dir>/shard_i.jsonl --resume <dir>/shard_i.jsonl` per
//   worker, so any sweep tool that understands those three flags can swarm.
//
//   With `--launcher` the workers run through a launcher template instead of
//   a plain local fork/exec — `{cmd}` becomes the shell-quoted worker
//   command, `{host}` round-robins over `--hosts`:
//
//     hydra_swarm sweep --shards 8 --dir /nfs/swarm
//         --launcher "ssh {host} {cmd}" --hosts m1,m2,m3,m4
//         -- ./build/bench_fig2_acceptance --replications 20
//
//   The shard directory must live on a filesystem shared with every host
//   (liveness and resume both read the checkpoints); `--launcher "sh -c
//   {cmd}"` exercises the same path entirely locally (CI does).
//
//   serve — long-running allocation daemon over a Unix-domain socket,
//   line-delimited JSON in/out, batching concurrent requests through one
//   engine pass and caching responses by spec fingerprint:
//
//     hydra_swarm serve --socket /tmp/hydra.sock --schemes hydra,optimal
//
//   request — one-shot client for the daemon (shell recipes, CI smoke):
//
//     hydra_swarm request --socket /tmp/hydra.sock --taskset set.txt
//     hydra_swarm request --socket /tmp/hydra.sock --stats
//     hydra_swarm request --socket /tmp/hydra.sock --shutdown
//
// Exit codes: 0 success; 1 swarm/request failure (sweep mode prints the
// salvage command before exiting); 2 usage error.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/sinks.h"
#include "swarm/process.h"
#include "swarm/service.h"
#include "swarm/socket.h"
#include "swarm/sweep_runner.h"
#include "util/cli.h"

namespace swarm = hydra::swarm;

namespace {

int usage(const std::string& program) {
  std::cerr
      << "usage: " << program << " <mode> [options]\n"
      << "  sweep   --shards N --dir DIR [--out F] [--partial F] [--events F]\n"
      << "          [--poll S] [--merge-every S] [--max-attempts K]\n"
      << "          [--stall-timeout S] [--backoff S] [--expect-fingerprint HEX]\n"
      << "          [--chaos-kill-shard I] [--chaos-after-cells N]\n"
      << "          [--launcher TEMPLATE] [--hosts h1,h2,...]\n"
      << "          -- worker_command worker_args...\n"
      << "  serve   --socket PATH [--schemes a,b] [--cache-bytes N] [--jobs N]\n"
      << "          [--optimal-budget N] [--poll S] [--events F]\n"
      << "          [--cache-journal F]\n"
      << "  request --socket PATH (--taskset FILE [--schemes a,b] | --stats |\n"
      << "          --ping | --shutdown | --raw LINE)\n";
  return 2;
}

/// Sink selected by --events: a file stream, or none.
struct EventSink {
  std::ofstream file;
  std::ostream* stream = nullptr;

  explicit EventSink(const std::string& path) {
    if (path.empty()) return;
    file.open(path, std::ios::trunc);
    if (!file) throw std::runtime_error("cannot open events file: " + path);
    stream = &file;
  }
};

int run_sweep(int argc, char** argv) {
  // Everything after a literal `--` is the worker command template; only the
  // part before it belongs to the orchestrator's parser.
  int split = argc;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--") {
      split = i;
      break;
    }
  }
  const hydra::util::CliParser cli(split, argv, /*allow_positionals=*/true);

  swarm::SweepRunnerOptions options;
  options.shards = static_cast<std::size_t>(cli.get_int("shards", 2));
  options.dir = cli.get_string("dir", "");
  options.out_path = cli.get_string("out", "");
  options.partial_path = cli.get_string("partial", "");
  options.poll_interval_s = cli.get_double("poll", 0.25);
  options.merge_interval_s = cli.get_double("merge-every", 5.0);
  options.policy.max_attempts = static_cast<int>(cli.get_int("max-attempts", 3));
  options.policy.stall_timeout_s = cli.get_double("stall-timeout", 0.0);
  options.policy.backoff_initial_s = cli.get_double("backoff", 0.5);
  options.expect_fingerprint = cli.get_string("expect-fingerprint", "");
  options.chaos_kill_shard = static_cast<int>(cli.get_int("chaos-kill-shard", -1));
  options.chaos_after_rows =
      static_cast<std::size_t>(cli.get_int("chaos-after-cells", 1));
  for (int i = split + 1; i < argc; ++i) {
    options.worker_command.emplace_back(argv[i]);
  }
  if (options.dir.empty() || options.worker_command.empty()) {
    std::cerr << "hydra_swarm sweep: need --dir and a worker command after --\n";
    return 2;
  }

  EventSink events(cli.get_string("events", ""));
  swarm::EventLog log(events.stream);
  // --launcher selects the remote backend (a plain local launcher template
  // like "sh -c {cmd}" works too); without it workers fork/exec directly.
  std::unique_ptr<swarm::ProcessBackend> backend;
  const std::string launcher = cli.get_string("launcher", "");
  if (!launcher.empty()) {
    swarm::RemoteBackendOptions remote;
    remote.launcher = launcher;
    remote.hosts = cli.get_string_list("hosts", {});
    backend = std::make_unique<swarm::RemoteProcessBackend>(std::move(remote));
  } else {
    backend = std::make_unique<swarm::LocalProcessBackend>();
  }
  swarm::SweepRunner runner(std::move(options), *backend, log);
  const auto result = runner.run(std::cerr);
  if (!result.ok) {
    std::cerr << "hydra_swarm: " << result.error << "\n";
    return 1;
  }
  std::cerr << "hydra_swarm: swarm complete — " << result.cells << " cells, "
            << result.rows << " rows, " << result.restarts << " restart(s)\n";
  return 0;
}

int run_serve(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv, /*allow_positionals=*/true);
  const std::string socket_path = cli.get_string("socket", "");
  if (socket_path.empty()) {
    std::cerr << "hydra_swarm serve: need --socket PATH\n";
    return 2;
  }

  swarm::ServiceOptions service_options;
  service_options.default_schemes =
      cli.get_string_list("schemes", service_options.default_schemes);
  service_options.cache_budget_bytes = static_cast<std::size_t>(cli.get_int(
      "cache-bytes", static_cast<std::int64_t>(service_options.cache_budget_bytes)));
  service_options.jobs = static_cast<std::size_t>(cli.get_int("jobs", 1));
  service_options.optimal_budget = static_cast<std::size_t>(cli.get_int(
      "optimal-budget", static_cast<std::int64_t>(service_options.optimal_budget)));
  service_options.cache_journal_path = cli.get_string("cache-journal", "");

  swarm::ServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.poll_interval_s = cli.get_double("poll", 0.25);

  EventSink events(cli.get_string("events", ""));
  swarm::EventLog log(events.stream);
  swarm::AllocationService service(service_options);
  if (!service_options.cache_journal_path.empty()) {
    std::cerr << "hydra_swarm: replayed " << service.stats().journal_replayed
              << " cached response(s) from "
              << service_options.cache_journal_path << "\n";
  }
  swarm::ServiceServer server(service, server_options, log);
  std::cerr << "hydra_swarm: serving on " << socket_path << "\n";
  const std::size_t served = server.run();
  std::cerr << "hydra_swarm: served " << served << " request(s); "
            << service.stats().hits << " cache hit(s), "
            << service.stats().misses << " miss(es)\n";
  return 0;
}

int run_request(int argc, char** argv) {
  const hydra::util::CliParser cli(
      argc, argv, /*allow_positionals=*/true,
      /*value_less_flags=*/{"stats", "ping", "shutdown"});
  const std::string socket_path = cli.get_string("socket", "");
  if (socket_path.empty()) {
    std::cerr << "hydra_swarm request: need --socket PATH\n";
    return 2;
  }

  std::string line;
  if (cli.has("raw")) {
    line = cli.get_string("raw", "");
  } else if (cli.get_bool("stats", false)) {
    line = "{\"op\":\"stats\"}";
  } else if (cli.get_bool("ping", false)) {
    line = "{\"op\":\"ping\"}";
  } else if (cli.get_bool("shutdown", false)) {
    line = "{\"op\":\"shutdown\"}";
  } else if (cli.has("taskset")) {
    const std::string path = cli.get_string("taskset", "");
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "hydra_swarm request: cannot read taskset file: " << path << "\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    line = "{\"op\":\"allocate\",\"taskset_text\":\"" +
           hydra::exp::json_escape(text.str()) + "\"";
    const auto schemes = cli.get_string_list("schemes", {});
    if (!schemes.empty()) {
      line += ",\"schemes\":[";
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        if (i > 0) line += ",";
        line += "\"" + hydra::exp::json_escape(schemes[i]) + "\"";
      }
      line += "]";
    }
    line += "}";
  } else {
    std::cerr << "hydra_swarm request: need --taskset, --stats, --ping,"
                 " --shutdown or --raw\n";
    return 2;
  }

  swarm::ServiceClient client(socket_path);
  const std::string response = client.request(line);
  std::cout << response << "\n";
  // Scripts branch on the exit code without parsing JSON.
  return response.rfind("{\"ok\":true", 0) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage(argv[0]);
    const std::string mode = argv[1];
    // Re-point argv so each mode parser sees `hydra_swarm-<mode>` as argv[0]
    // and the mode's own options from argv[1] on.
    if (mode == "sweep") return run_sweep(argc - 1, argv + 1);
    if (mode == "serve") return run_serve(argc - 1, argv + 1);
    if (mode == "request") return run_request(argc - 1, argv + 1);
    std::cerr << "hydra_swarm: unknown mode \"" << mode << "\"\n";
    return usage(argv[0]);
  } catch (const std::exception& error) {
    std::cerr << "hydra_swarm: " << error.what() << "\n";
    return 1;
  }
}
