// The allocation service's line protocol: one JSON object per line, request
// in, response out.  Requests are small flat objects, so this is a minimal
// field extractor, not a general JSON library — exp/sinks.h already owns the
// (stricter) row grammar; this parser exists for the handful of request
// shapes the daemon accepts:
//
//   {"op":"allocate","schemes":["hydra"],"taskset_text":"cores 2\n..."}
//   {"op":"allocate","schemes":["hydra"],"taskset_file":"tests/corpus/a.txt"}
//   {"op":"stats"} | {"op":"ping"} | {"op":"shutdown"}
//
// Responses are produced by the service (swarm/service.h) with the exp
// layer's deterministic formatting helpers, never by this file.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hydra::swarm {

/// One parsed top-level field.  Exactly one of the optionals is set.
struct JsonField {
  std::optional<std::string> string_value;
  std::optional<double> number_value;
  std::optional<bool> bool_value;
  std::optional<std::vector<std::string>> string_array;
};

/// Parses a single-line flat JSON object: top-level values may be strings
/// (with the usual escapes, \uXXXX limited to ASCII), numbers, booleans,
/// null (field dropped), or arrays of strings.  Nested objects/arrays of
/// non-strings are rejected.  Returns nullopt on anything malformed,
/// including trailing garbage — a request either parses exactly or is
/// answered with an error, never half-understood.
std::optional<std::map<std::string, JsonField>> parse_flat_json(
    const std::string& line);

}  // namespace hydra::swarm
