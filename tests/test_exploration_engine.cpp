// Tests for the batch exploration engine: determinism across thread counts,
// stable row ordering, error/skip isolation, and parity between the
// explore_design_space convenience and the underlying allocators.
#include <gtest/gtest.h>

#include <sstream>

#include "core/design_space.h"
#include "core/hydra.h"
#include "core/optimal.h"
#include "core/single_core.h"
#include "exp/batch.h"
#include "exp/engine.h"
#include "exp/sinks.h"
#include "gen/uav.h"

namespace core = hydra::core;
namespace hexp = hydra::exp;

namespace {

hexp::BatchSpec small_batch(std::size_t count, double utilization) {
  hexp::BatchSpec spec;
  spec.count = count;
  spec.synthetic.num_cores = 2;
  // NS ∈ [2, 4] keeps the exhaustive optimal's 2^NS joint solves cheap enough
  // for a unit test while still exercising multi-task assignments.
  spec.synthetic.min_sec_per_core = 1;
  spec.synthetic.max_sec_per_core = 2;
  spec.total_utilization = utilization;
  spec.base_seed = 42;
  return spec;
}

std::string run_to_jsonl(const hexp::ExplorationEngine& engine, const hexp::BatchSpec& spec) {
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  engine.run(spec, {&sink});
  return os.str();
}

}  // namespace

TEST(Batch, PerInstanceSeedsAreDeterministicAndDistinct) {
  EXPECT_EQ(hexp::instance_seed(1, 0), hexp::instance_seed(1, 0));
  EXPECT_NE(hexp::instance_seed(1, 0), hexp::instance_seed(1, 1));
  EXPECT_NE(hexp::instance_seed(1, 0), hexp::instance_seed(2, 0));
  const auto items = enumerate(small_batch(5, 1.0));
  ASSERT_EQ(items.size(), 5u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].index, i);
    EXPECT_EQ(items[i].seed, hexp::instance_seed(42, i));
  }
}

TEST(Batch, MaterializeIsAPureFunctionOfTheItem) {
  const auto spec = small_batch(3, 1.0);
  const auto items = enumerate(spec);
  const auto once = materialize(spec, items[1]);
  const auto twice = materialize(spec, items[1]);
  ASSERT_TRUE(once.instance.has_value());
  ASSERT_TRUE(twice.instance.has_value());
  EXPECT_EQ(once.instance->rt_tasks.size(), twice.instance->rt_tasks.size());
  EXPECT_DOUBLE_EQ(once.rt_utilization, twice.rt_utilization);
}

TEST(ExplorationEngine, RejectsUnknownSchemesUpFront) {
  hexp::EngineOptions options;
  options.schemes = {"hydra", "definitely-not-registered"};
  EXPECT_THROW(hexp::ExplorationEngine{options}, std::invalid_argument);
  options.schemes = {};
  EXPECT_THROW(hexp::ExplorationEngine{options}, std::invalid_argument);
}

TEST(ExplorationEngine, JsonlIsByteIdenticalAcrossJobCounts) {
  // The acceptance bar for the whole redesign: same BatchSpec ⇒ the JSONL
  // stream is byte-identical whether one worker or eight evaluate it.
  const auto spec = small_batch(8, 1.2);

  hexp::EngineOptions serial;
  serial.schemes = {"hydra", "single-core", "optimal"};
  serial.jobs = 1;
  hexp::EngineOptions parallel = serial;
  parallel.jobs = 8;

  const auto out1 = run_to_jsonl(hexp::ExplorationEngine(serial), spec);
  const auto out8 = run_to_jsonl(hexp::ExplorationEngine(parallel), spec);
  EXPECT_FALSE(out1.empty());
  EXPECT_EQ(out1, out8);
}

TEST(ExplorationEngine, RowsArriveInBatchOrderPerScheme) {
  const auto spec = small_batch(8, 1.0);
  hexp::EngineOptions options;
  options.schemes = {"hydra", "single-core"};
  options.jobs = 4;
  const auto summary = hexp::ExplorationEngine(options).run(spec);
  ASSERT_EQ(summary.rows.size(), 16u);
  for (std::size_t i = 0; i < summary.rows.size(); ++i) {
    EXPECT_EQ(summary.rows[i].instance_index, i / 2);
    EXPECT_EQ(summary.rows[i].scheme, i % 2 == 0 ? "hydra" : "single-core");
  }
  EXPECT_EQ(summary.instances, 8u);
  EXPECT_EQ(summary.evaluated + summary.skipped + summary.errors, 16u);
}

TEST(ExplorationEngine, OptimalSkippedWhenEnumerationExceedsBudget) {
  // M = 2, NS >= 2 ⇒ at least 4 assignments; a budget of 1 skips them all.
  const auto spec = small_batch(3, 1.0);
  hexp::EngineOptions options;
  options.schemes = {"optimal", "hydra"};
  options.optimal_budget = 1;
  const auto summary = hexp::ExplorationEngine(options).run(spec);
  for (const auto& row : summary.rows) {
    if (row.scheme != "optimal") continue;
    if (row.status == "no-instance") continue;
    EXPECT_EQ(row.status, "skipped");
    EXPECT_NE(row.note.find("budget"), std::string::npos);
  }
}

TEST(ExplorationEngine, ImpossibleUtilizationYieldsNoInstanceRows) {
  // Utilization far beyond M: every draw fails Eq. (1); the engine reports
  // each (instance, scheme) pair instead of aborting the sweep.
  auto spec = small_batch(2, 50.0);
  spec.max_attempts = 2;
  hexp::EngineOptions options;
  options.schemes = {"hydra"};
  const auto summary = hexp::ExplorationEngine(options).run(spec);
  ASSERT_EQ(summary.rows.size(), 2u);
  for (const auto& row : summary.rows) {
    EXPECT_EQ(row.status, "no-instance");
    EXPECT_FALSE(row.feasible);
  }
  EXPECT_EQ(summary.errors, 2u);
}

TEST(ExplorationEngine, RunInstanceEvaluatesTheGivenInstance) {
  const auto instance = hydra::gen::uav_case_study(2);
  hexp::EngineOptions options;
  options.schemes = {"hydra", "single-core", "optimal"};
  const auto summary = hexp::ExplorationEngine(options).run_instance(instance);
  ASSERT_EQ(summary.rows.size(), 3u);
  for (const auto& row : summary.rows) {
    EXPECT_EQ(row.status, "ok") << row.scheme << ": " << row.note;
    EXPECT_TRUE(row.feasible) << row.scheme;
    EXPECT_TRUE(row.validated) << row.scheme;
  }
  EXPECT_EQ(summary.feasible, 3u);
}

TEST(DesignSpace, ConvenienceMatchesDirectAllocatorResults) {
  // explore_design_space is a thin layer over the Allocator interface: its
  // points must equal what the concrete allocators produce directly (the
  // pre-refactor behaviour, pinned on a fixed instance).
  const auto instance = hydra::gen::uav_case_study(2);
  const auto report = core::explore_design_space(instance);
  ASSERT_EQ(report.points.size(), 4u);

  const auto direct_hydra = core::HydraAllocator().allocate(instance);
  EXPECT_DOUBLE_EQ(report.points[0].cumulative_tightness,
                   direct_hydra.cumulative_tightness(instance.security_tasks));

  core::HydraOptions exact;
  exact.solver = core::PeriodSolver::kExactRta;
  const auto direct_exact = core::HydraAllocator(exact).allocate(instance);
  EXPECT_DOUBLE_EQ(report.points[1].cumulative_tightness,
                   direct_exact.cumulative_tightness(instance.security_tasks));

  const auto direct_single = core::SingleCoreAllocator().allocate(instance);
  EXPECT_DOUBLE_EQ(report.points[2].cumulative_tightness,
                   direct_single.cumulative_tightness(instance.security_tasks));

  core::OptimalOptions opt;
  opt.max_assignments = 4096;
  const auto direct_optimal = core::OptimalAllocator(opt).allocate(instance);
  EXPECT_DOUBLE_EQ(report.points[3].cumulative_tightness,
                   direct_optimal.cumulative_tightness(instance.security_tasks));
}

TEST(DesignSpace, RegistrySchemeSelectionOverload) {
  const auto instance = hydra::gen::uav_case_study(2);
  const auto report =
      core::explore_design_space(instance, {"single-core", "hydra/first-fit"});
  ASSERT_EQ(report.points.size(), 2u);
  EXPECT_EQ(report.points[0].scheme, "single-core");
  EXPECT_EQ(report.points[1].scheme, "hydra/first-fit");
  EXPECT_THROW(core::explore_design_space(instance, {"nope"}), std::invalid_argument);
}
