// Tests for attack injection and detection-time measurement (the Fig. 1
// machinery): sim-task construction, detection bounds, and scheme comparison.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/hydra.h"
#include "core/single_core.h"
#include "gen/uav.h"
#include "sim/attack.h"
#include "stats/summary.h"

namespace core = hydra::core;
namespace sim = hydra::sim;
namespace rt = hydra::rt;

namespace {

sim::DetectionConfig quick_config() {
  sim::DetectionConfig c;
  c.horizon = 200u * 1000u * hydra::util::kTicksPerMilli;  // 200 s
  c.trials = 100;
  c.seed = 9;
  return c;
}

}  // namespace

TEST(BuildSimTasks, ShapesAndPriorities) {
  const auto inst = hydra::gen::uav_case_study(2);
  const auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  const auto tasks = sim::build_sim_tasks(inst, allocation);
  ASSERT_EQ(tasks.size(), inst.rt_tasks.size() + inst.security_tasks.size());

  // Every security task's priority is below (greater than) every RT task's.
  int max_rt = -1, min_sec = 1 << 20;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (i < inst.rt_tasks.size()) {
      max_rt = std::max(max_rt, tasks[i].priority);
    } else {
      min_sec = std::min(min_sec, tasks[i].priority);
    }
  }
  EXPECT_LT(max_rt, min_sec);

  // Security periods match the allocation (rounded to ticks).
  for (std::size_t s = 0; s < inst.security_tasks.size(); ++s) {
    const auto& st = tasks[inst.rt_tasks.size() + s];
    EXPECT_EQ(st.core, allocation.placements[s].core);
    EXPECT_NEAR(hydra::util::to_millis(st.period), allocation.placements[s].period, 0.001);
    EXPECT_EQ(st.deadline, st.period);  // implicit deadline
  }
}

TEST(BuildSimTasks, InfeasibleAllocationRejected) {
  const auto inst = hydra::gen::uav_case_study(2);
  core::Allocation bogus;
  bogus.feasible = false;
  EXPECT_THROW(sim::build_sim_tasks(inst, bogus), std::invalid_argument);
}

TEST(Detection, FeasibleAllocationHasNoDeadlineMisses) {
  const auto inst = hydra::gen::uav_case_study(2);
  const auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  const auto result = sim::measure_detection_times(inst, allocation, quick_config());
  EXPECT_EQ(result.deadline_misses, 0u);
}

TEST(Detection, SamplesArePositiveAndBounded) {
  const auto inst = hydra::gen::uav_case_study(2);
  const auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  const auto result = sim::measure_detection_times(inst, allocation, quick_config());
  ASSERT_GT(result.detection_ms.size(), 0u);

  // Worst-case detection is bounded by 2·max period (one full period missed
  // plus the next scan's response, which is at most its period).
  double max_period = 0.0;
  for (const auto& p : allocation.placements) max_period = std::max(max_period, p.period);
  for (const double d : result.detection_ms) {
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 2.0 * max_period + 1.0);
  }
}

TEST(Detection, SingleTaskScopeFasterThanAllTasks) {
  const auto inst = hydra::gen::uav_case_study(2);
  const auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  auto config = quick_config();
  config.scope = sim::AttackScope::kSingleTask;
  const auto single = sim::measure_detection_times(inst, allocation, config);
  config.scope = sim::AttackScope::kAllTasks;
  const auto all = sim::measure_detection_times(inst, allocation, config);
  ASSERT_GT(single.detection_ms.size(), 0u);
  ASSERT_GT(all.detection_ms.size(), 0u);
  // Worst-case (all) detection stochastically dominates single-surface.
  EXPECT_LE(hydra::stats::summarize(single.detection_ms).mean,
            hydra::stats::summarize(all.detection_ms).mean);
}

TEST(Detection, DeterministicGivenSeed) {
  const auto inst = hydra::gen::uav_case_study(2);
  const auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  const auto r1 = sim::measure_detection_times(inst, allocation, quick_config());
  const auto r2 = sim::measure_detection_times(inst, allocation, quick_config());
  ASSERT_EQ(r1.detection_ms.size(), r2.detection_ms.size());
  for (std::size_t i = 0; i < r1.detection_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.detection_ms[i], r2.detection_ms[i]);
  }
}

TEST(Detection, HydraBeatsSingleCoreOnTheCaseStudy) {
  // The headline Fig. 1 claim at small scale: mean worst-case detection time
  // under HYDRA is below SingleCore's for every tested core count.
  for (const std::size_t m : {2u, 4u}) {
    const auto inst = hydra::gen::uav_case_study(m);
    const auto hydra_alloc = core::HydraAllocator().allocate(inst);
    const auto single_alloc = core::SingleCoreAllocator().allocate(inst);
    ASSERT_TRUE(hydra_alloc.feasible);
    ASSERT_TRUE(single_alloc.feasible);
    const auto hydra_res = sim::measure_detection_times(inst, hydra_alloc, quick_config());
    const auto single_res = sim::measure_detection_times(inst, single_alloc, quick_config());
    ASSERT_GT(hydra_res.detection_ms.size(), 0u);
    ASSERT_GT(single_res.detection_ms.size(), 0u);
    EXPECT_LT(hydra::stats::summarize(hydra_res.detection_ms).mean,
              hydra::stats::summarize(single_res.detection_ms).mean)
        << "M = " << m;
  }
}

TEST(Detection, RejectsDegenerateConfigs) {
  const auto inst = hydra::gen::uav_case_study(2);
  const auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  auto config = quick_config();
  config.trials = 0;
  EXPECT_THROW(sim::measure_detection_times(inst, allocation, config), std::invalid_argument);
  config = quick_config();
  config.horizon = 1000;  // 1 ms — far below the security periods
  EXPECT_THROW(sim::measure_detection_times(inst, allocation, config), std::invalid_argument);
}
