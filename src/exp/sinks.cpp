#include "exp/sinks.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "io/table.h"

namespace hydra::exp {

namespace {

const char* const kColumns[] = {"cell",     "instance",  "label",
                                "seed",     "scheme",    "status",
                                "feasible", "validated", "tightness",
                                "normalized", "note"};

std::vector<std::string> row_cells(const BatchRow& row) {
  return {row.cell.empty() ? std::string("-") : row.cell,
          std::to_string(row.instance_index),
          row.instance_label,
          row.seed == 0 ? std::string("-") : std::to_string(row.seed),
          row.scheme,
          row.status,
          row.feasible ? "yes" : "no",
          row.validated ? "yes" : "no",
          row.feasible ? format_double(row.cumulative_tightness) : "-",
          row.feasible ? format_double(row.normalized_tightness) : "-",
          row.note};
}

}  // namespace

std::string format_double(double value) {
  // std::to_chars emits the shortest round-trip representation and ignores
  // the locale, which is what keeps the streams byte-stable.  Non-finite
  // values stay visible instead of masquerading as numbers.
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

std::string json_number(double value) {
  // JSON has no NaN/Infinity literal; null keeps the line parseable.
  return std::isfinite(value) ? format_double(value) : "null";
}

// ---------------------------------------------------------------------------
// TableSink
// ---------------------------------------------------------------------------

struct TableSink::Impl {
  explicit Impl(std::ostream& os)
      : os(os), table(std::vector<std::string>(std::begin(kColumns), std::end(kColumns))) {}
  std::ostream& os;
  io::Table table;
};

TableSink::TableSink(std::ostream& os) : impl_(std::make_unique<Impl>(os)) {}
TableSink::~TableSink() = default;

void TableSink::row(const BatchRow& row) { impl_->table.add_row(row_cells(row)); }

void TableSink::end() {
  if (impl_->table.num_rows() == 0) return;
  impl_->table.print(impl_->os);
  // Reset so a subsequent engine run prints its own table instead of
  // re-printing accumulated rows.
  impl_->table = io::Table(std::vector<std::string>(std::begin(kColumns), std::end(kColumns)));
}

// ---------------------------------------------------------------------------
// CsvSink
// ---------------------------------------------------------------------------

void CsvSink::begin() {
  if (header_written_) return;
  header_written_ = true;
  bool first = true;
  for (const char* column : kColumns) {
    if (!first) os_ << ',';
    os_ << column;
    first = false;
  }
  os_ << '\n';
}

void CsvSink::row(const BatchRow& row) {
  bool first = true;
  for (const auto& cell : row_cells(row)) {
    if (!first) os_ << ',';
    os_ << io::csv_quote(cell);
    first = false;
  }
  os_ << '\n';
}

// ---------------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonlSink::row(const BatchRow& row) {
  os_ << "{\"cell\":\"" << json_escape(row.cell) << '"'
      << ",\"point\":" << row.point_index
      << ",\"point_label\":\"" << json_escape(row.point_label) << '"'
      << ",\"target_utilization\":" << json_number(row.target_utilization)
      << ",\"instance\":" << row.instance_index
      << ",\"label\":\"" << json_escape(row.instance_label) << '"'
      << ",\"seed\":" << row.seed
      << ",\"scheme\":\"" << json_escape(row.scheme) << '"'
      << ",\"status\":\"" << json_escape(row.status) << '"'
      << ",\"feasible\":" << (row.feasible ? "true" : "false")
      << ",\"validated\":" << (row.validated ? "true" : "false")
      << ",\"cumulative_tightness\":" << json_number(row.cumulative_tightness)
      << ",\"normalized_tightness\":" << json_number(row.normalized_tightness)
      << ",\"rt_utilization\":" << json_number(row.rt_utilization)
      << ",\"sec_utilization\":" << json_number(row.sec_utilization);
  if (!row.metrics.empty()) {
    os_ << ",\"metrics\":{";
    bool first = true;
    for (const auto& [name, value] : row.metrics) {
      if (!first) os_ << ',';
      os_ << '"' << json_escape(name) << "\":" << json_number(value);
      first = false;
    }
    os_ << '}';
  }
  os_ << ",\"note\":\"" << json_escape(row.note) << "\"}\n";
}

// ---------------------------------------------------------------------------
// JSONL row parsing (the resume loader's half of the round trip)
// ---------------------------------------------------------------------------

namespace {

/// Cursor over one JSONL line.  The grammar is exactly what JsonlSink emits —
/// a flat object of strings / numbers / booleans / null plus one optional
/// nested "metrics" object — so the parser can stay tiny and strict: any
/// deviation (truncated line, foreign producer) fails the whole row, which
/// the resume loader treats as "recompute this cell".
struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool peek(char c) const { return pos < text.size() && text[pos] == c; }
  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text.compare(pos, len, word) != 0) return false;
    pos += len;
    return true;
  }
};

bool parse_json_string(JsonCursor& cur, std::string& out) {
  if (!cur.eat('"')) return false;
  out.clear();
  while (cur.pos < cur.text.size()) {
    const char c = cur.text[cur.pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (cur.pos >= cur.text.size()) return false;
    const char esc = cur.text[cur.pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (cur.pos + 4 > cur.text.size()) return false;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = cur.text[cur.pos++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        // Our escaper only produces \u00xx for control bytes; reject anything
        // a round trip could not have written.
        if (code > 0x7F) return false;
        out += static_cast<char>(code);
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

bool parse_json_number(JsonCursor& cur, double& out) {
  if (cur.literal("null")) {
    out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  const char* begin = cur.text.data() + cur.pos;
  const char* end = cur.text.data() + cur.text.size();
  const auto result = std::from_chars(begin, end, out);
  if (result.ec != std::errc()) return false;
  cur.pos += static_cast<std::size_t>(result.ptr - begin);
  return true;
}

/// Unsigned integers (seed is a full 64-bit splitmix64 value) must not go
/// through double — anything above 2^53 would round and break the
/// byte-identical re-serialization guarantee.
bool parse_json_uint(JsonCursor& cur, std::uint64_t& out) {
  const char* begin = cur.text.data() + cur.pos;
  const char* end = cur.text.data() + cur.text.size();
  const auto result = std::from_chars(begin, end, out);
  if (result.ec != std::errc()) return false;
  cur.pos += static_cast<std::size_t>(result.ptr - begin);
  return true;
}

bool parse_json_metrics(JsonCursor& cur,
                        std::vector<std::pair<std::string, double>>& out) {
  if (!cur.eat('{')) return false;
  if (cur.eat('}')) return true;
  do {
    std::string name;
    double value = 0.0;
    if (!parse_json_string(cur, name) || !cur.eat(':') ||
        !parse_json_number(cur, value)) {
      return false;
    }
    out.emplace_back(std::move(name), value);
  } while (cur.eat(','));
  return cur.eat('}');
}

}  // namespace

std::optional<BatchRow> parse_jsonl_row(const std::string& line) {
  JsonCursor cur{line};
  if (!cur.eat('{')) return std::nullopt;
  BatchRow row;
  bool first = true;
  while (!cur.peek('}')) {
    if (!first && !cur.eat(',')) return std::nullopt;
    first = false;
    std::string key;
    if (!parse_json_string(cur, key) || !cur.eat(':')) return std::nullopt;

    if (key == "metrics") {
      if (!parse_json_metrics(cur, row.metrics)) return std::nullopt;
      continue;
    }
    if (key == "feasible" || key == "validated") {
      bool value;
      if (cur.literal("true")) value = true;
      else if (cur.literal("false")) value = false;
      else return std::nullopt;
      (key == "feasible" ? row.feasible : row.validated) = value;
      continue;
    }
    if (key == "cell" || key == "point_label" || key == "label" ||
        key == "scheme" || key == "status" || key == "note") {
      std::string value;
      if (!parse_json_string(cur, value)) return std::nullopt;
      if (key == "cell") row.cell = std::move(value);
      else if (key == "point_label") row.point_label = std::move(value);
      else if (key == "label") row.instance_label = std::move(value);
      else if (key == "scheme") row.scheme = std::move(value);
      else if (key == "status") row.status = std::move(value);
      else row.note = std::move(value);
      continue;
    }
    if (key == "point" || key == "instance" || key == "seed") {
      std::uint64_t value = 0;
      if (!parse_json_uint(cur, value)) return std::nullopt;
      if (key == "point") row.point_index = static_cast<std::size_t>(value);
      else if (key == "instance") row.instance_index = static_cast<std::size_t>(value);
      else row.seed = value;
      continue;
    }
    double value = 0.0;
    if (!parse_json_number(cur, value)) return std::nullopt;
    if (key == "target_utilization") row.target_utilization = value;
    else if (key == "cumulative_tightness") row.cumulative_tightness = value;
    else if (key == "normalized_tightness") row.normalized_tightness = value;
    else if (key == "rt_utilization") row.rt_utilization = value;
    else if (key == "sec_utilization") row.sec_utilization = value;
    else return std::nullopt;  // a key JsonlSink never writes
  }
  cur.eat('}');
  // Trailing garbage after the object means the line is not ours.
  return cur.pos == line.size() ? std::optional<BatchRow>(std::move(row)) : std::nullopt;
}

// ---------------------------------------------------------------------------
// File sink
// ---------------------------------------------------------------------------

namespace {

class FileSink : public ResultSink {
 public:
  FileSink(const std::string& path, bool jsonl, const std::string& header_line)
      : stream_(path) {
    if (!stream_) throw std::runtime_error("cannot open result file: " + path);
    if (!header_line.empty()) stream_ << header_line << '\n';
    if (jsonl) {
      inner_ = std::make_unique<JsonlSink>(stream_);
    } else {
      inner_ = std::make_unique<CsvSink>(stream_);
    }
  }

  void begin() override { inner_->begin(); }
  void row(const BatchRow& row) override { inner_->row(row); }
  void end() override {
    inner_->end();
    stream_.flush();
  }

 private:
  std::ofstream stream_;
  std::unique_ptr<ResultSink> inner_;
};

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::unique_ptr<ResultSink> make_file_sink(const std::string& path,
                                           const std::string& header_line) {
  if (ends_with(path, ".jsonl") || ends_with(path, ".json")) {
    return std::make_unique<FileSink>(path, /*jsonl=*/true, header_line);
  }
  if (ends_with(path, ".csv")) {
    if (!header_line.empty()) {
      throw std::invalid_argument(
          "shard headers are a JSONL concept; cannot prepend one to " + path);
    }
    return std::make_unique<FileSink>(path, /*jsonl=*/false, header_line);
  }
  throw std::invalid_argument("result file must end in .jsonl, .json or .csv: " + path);
}

}  // namespace hydra::exp
