// The sweep layer: one declarative SweepSpec crossing schemes × grid points ×
// replications, evaluated as a single work-stealing job queue.
//
// A sweep generalizes the ExplorationEngine's one-BatchSpec run to the
// paper-style evaluation grids (Figs. 1–3: utilization × scheme × core
// count).  Properties the benches and the regression harness rely on:
//
//   * One queue, no per-point barrier — a worker that finishes the last
//     instance of point 3 immediately steals an instance of point 7, so a
//     slow cell (the exhaustive optimal at high utilization) never idles the
//     pool the way per-point engine runs did.
//   * Determinism — every (point, instance) unit derives its seed from
//     (base_seed, point index, instance index) alone and evaluation is pure,
//     so the row stream is byte-identical for any --jobs value.
//   * Stable order — rows reach the sinks point-major, instance-minor, then
//     scheme order, via the same reorder-buffer technique as the engine.
//   * Resumability — every row is stamped with a deterministic cell key
//     ("p<point>:<label>:i<instance>").  `resume_path` points at the JSONL of
//     a previous (possibly killed mid-run) invocation; cells whose full
//     scheme row-set is present and matches the spec are spliced in verbatim
//     instead of re-evaluated, and the final output is byte-identical to an
//     uninterrupted run.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "exp/engine.h"

namespace hydra::exp {

/// One grid point of a sweep.  Exactly one source applies, checked in this
/// order: a preset `instance` (case studies), a `files` list (workload
/// corpora), else `replications` synthetic draws at `total_utilization`.
struct SweepPoint {
  std::string label;                       ///< "" = auto ("m=<M> u=<U>", ...)
  gen::SyntheticConfig synthetic;          ///< synthetic-source configuration
  double total_utilization = 1.0;          ///< RT + security target (synthetic)
  std::vector<std::string> files;          ///< file source, overrides synthetic
  std::optional<core::Instance> instance;  ///< preset source, overrides both
};

struct SweepSpec {
  /// Registry names evaluated per instance, in this order.
  std::vector<std::string> schemes = {"hydra", "single-core"};
  std::vector<SweepPoint> points;
  std::size_t replications = 1;   ///< synthetic instances per point
  std::uint64_t base_seed = 1;    ///< sweep-level seed
  int max_attempts = 64;          ///< Eq. (1) redraw budget per instance
  std::size_t jobs = 1;           ///< worker threads; 0 = hardware concurrency
  std::size_t optimal_budget = 4096;  ///< per-scheme search-space skip budget
  std::vector<RowMetric> metrics;     ///< extra per-row metric hooks
  /// JSONL checkpoint of a previous invocation; completed cells are spliced
  /// in instead of re-evaluated.  "" (or a missing file) means a cold start.
  std::string resume_path;

  /// Appends a synthetic grid point per utilization value — the Fig. 2/3
  /// "sweep total utilization on platform `config`" idiom in one call.
  void add_utilization_grid(const gen::SyntheticConfig& config,
                            const std::vector<double>& utilizations);

  /// Appends one file-sourced point for a workload corpus (see
  /// expand_workload_files for the directory/glob semantics).
  void add_corpus_point(const std::string& path_or_glob, std::string label = "");
};

/// The paper's utilization axis: `steps` equally spaced multiples of
/// `increment`·M, i.e. {1·inc·M, …, steps·inc·M} (Fig. 2: 39 steps of
/// 0.025·M).
std::vector<double> utilization_axis(std::size_t num_cores, std::size_t steps = 39,
                                     double increment = 0.025);

/// The deterministic per-point seed: one more splitmix64 level above
/// instance_seed, so point p's instance k never collides with point q's.
std::uint64_t sweep_point_seed(std::uint64_t base_seed, std::size_t point_index);

/// The cell key stamped on every row: "p<point>:<label>:i<instance>".  The
/// resume loader only splices a checkpointed cell whose key, seed, labels and
/// scheme set all match the current spec, so editing the spec invalidates
/// exactly the cells it changes.
std::string sweep_cell_key(std::size_t point_index, const std::string& point_label,
                           std::size_t instance_index);

/// Parses a JSONL checkpoint into rows grouped by cell key, tolerating a
/// truncated final line (the row that was mid-write when the run died).
/// A missing file yields an empty map — "resume from nothing" is a cold
/// start, so the same command line works for the first and the Nth attempt.
std::map<std::string, std::vector<BatchRow>> load_sweep_checkpoint(
    const std::string& path);

struct SweepSummary {
  std::size_t points = 0;         ///< grid points in the spec
  std::size_t cells = 0;          ///< (point, instance) units
  std::size_t resumed_cells = 0;  ///< units spliced from the checkpoint
  std::size_t evaluated = 0;      ///< rows with status "ok"
  std::size_t feasible = 0;       ///< ok rows with a feasible, validated result
  std::size_t skipped = 0;        ///< rows with status "skipped"
  std::size_t errors = 0;         ///< rows with status "error" or "no-instance"
  double wall_ms = 0.0;
  std::vector<BatchRow> rows;     ///< every row, in emission order
};

class Sweep {
 public:
  /// Validates the spec up front (scheme names against the registry, at least
  /// one point, a non-zero replication count) and assigns the default labels,
  /// so cell keys are fixed from construction on.  Throws
  /// std::invalid_argument.
  ///
  /// The resume checkpoint (if any) is read HERE, not in run() — so callers
  /// may pass the same path as checkpoint and output file: construct the
  /// Sweep first, then open the (truncating) output sink, then run.
  explicit Sweep(SweepSpec spec);

  /// Runs the whole grid, streaming rows to every sink in stable order.
  /// Sinks are invoked from the coordinating thread only.
  SweepSummary run(const std::vector<ResultSink*>& sinks = {}) const;

  /// The spec with defaulted labels filled in (what cell keys are built from).
  const SweepSpec& spec() const { return spec_; }

 private:
  SweepSpec spec_;
  std::map<std::string, std::vector<BatchRow>> checkpoint_;
};

}  // namespace hydra::exp
