#include "swarm/socket.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace hydra::swarm {

namespace {

constexpr double kServerClock = 0.0;  // events from the server carry no clock

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("socket path empty or too long (" +
                             std::to_string(sizeof(address.sun_path) - 1) +
                             " byte max): " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error("socket write failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

ServiceServer::ServiceServer(AllocationService& service, ServerOptions options,
                             EventLog& log)
    : service_(service), options_(std::move(options)), log_(log) {
  const auto address = make_address(options_.socket_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("cannot create socket");
  // A stale socket file from a dead daemon blocks bind; a LIVE daemon on the
  // same path is indistinguishable from a stale file without connecting, so
  // we follow the usual unlink-then-bind convention and document "one daemon
  // per path".
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot bind/listen on " + options_.socket_path +
                             ": " + reason);
  }
  log_.emit(kServerClock, "service-listening", options_.socket_path);
}

ServiceServer::~ServiceServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

std::size_t ServiceServer::run() {
  struct Connection {
    int fd;
    std::string buffer;
  };
  std::vector<Connection> connections;
  std::size_t served = 0;

  const auto close_connection = [&](std::size_t index) {
    ::close(connections[index].fd);
    connections.erase(connections.begin() + static_cast<std::ptrdiff_t>(index));
  };

  while (!stop_.load()) {
    // At the connection cap the listen fd stays readable while a client
    // waits in the backlog; polling it would turn the loop into a busy
    // spin, so it only joins the pollfd set while a slot is free.
    const bool accepting = connections.size() < options_.max_connections;
    std::vector<pollfd> fds;
    if (accepting) fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& connection : connections) {
      fds.push_back({connection.fd, POLLIN, 0});
    }
    const std::size_t base = accepting ? 1 : 0;
    const int timeout_ms = static_cast<int>(options_.poll_interval_s * 1000.0);
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("poll failed on the service socket");
    }
    if (ready == 0) continue;

    // Drain every ready connection; the complete lines gathered across ALL
    // of them form one service batch.  Accepting happens AFTER the drain so
    // fds[base + c] stays aligned with the connections poll() saw.
    std::vector<std::pair<std::size_t, std::string>> batch;  // (conn index, line)
    std::vector<std::size_t> hangups;
    for (std::size_t c = 0; c < connections.size(); ++c) {
      if ((fds[base + c].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char chunk[65536];
      const ssize_t n = ::recv(connections[c].fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
        hangups.push_back(c);
        continue;
      }
      connections[c].buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t newline = connections[c].buffer.find('\n', start);
        if (newline == std::string::npos) break;
        batch.emplace_back(c, connections[c].buffer.substr(start, newline - start));
        start = newline + 1;
      }
      connections[c].buffer.erase(0, start);
    }

    if (!batch.empty()) {
      std::vector<std::string> lines;
      lines.reserve(batch.size());
      for (const auto& [c, line] : batch) lines.push_back(line);
      const auto responses = service_.handle_batch(lines);
      served += lines.size();
      log_.emit(kServerClock, "service-batch", "",
                std::to_string(lines.size()) + " request(s)");
      for (std::size_t i = 0; i < batch.size(); ++i) {
        try {
          send_all(connections[batch[i].first].fd, responses[i] + "\n");
        } catch (const std::exception&) {
          // The client vanished between request and response; its fd is
          // collected by the hangup pass on the next drain.
        }
      }
    }

    // Close from the back so earlier indices stay valid.
    for (auto it = hangups.rbegin(); it != hangups.rend(); ++it) {
      close_connection(*it);
    }

    if (accepting && (fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) connections.push_back(Connection{fd, ""});
    }

    if (service_.shutdown_requested()) break;
  }

  for (auto& connection : connections) ::close(connection.fd);
  log_.emit(kServerClock, "service-stopped", options_.socket_path,
            std::to_string(served) + " request(s) served");
  return served;
}

ServiceClient::ServiceClient(const std::string& socket_path) {
  const auto address = make_address(socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("cannot create socket");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to " + socket_path + ": " + reason);
  }
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string ServiceClient::request(const std::string& line) {
  send_all(fd_, line + "\n");
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return response;
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error("service hung up before responding");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace hydra::swarm
