#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace hydra::stats {

Summary summarize(const std::vector<double>& samples) {
  HYDRA_REQUIRE(!samples.empty(), "summarize needs at least one sample");
  Summary s;
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.front();
  double sum = 0.0;
  for (const double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (const double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  return s;
}

double percentile_sorted(const std::vector<double>& sorted_samples, double p) {
  HYDRA_REQUIRE(!sorted_samples.empty(), "percentile needs at least one sample");
  HYDRA_REQUIRE(p >= 0.0 && p <= 1.0, "percentile level must be in [0, 1]");
  HYDRA_REQUIRE(sorted_samples.front() <= sorted_samples.back(),
                "percentile_sorted requires ascending samples");
  const std::size_t n = sorted_samples.size();
  if (n == 1) return sorted_samples.front();
  // h = p·(n−1): the fractional rank.  Using the (n−1) span (and not n) is
  // what keeps p = 0 and p = 1 exactly on the extreme samples instead of one
  // position past them — the off-by-one the boundary tests pin down.
  const double h = p * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= n) return sorted_samples.back();  // p == 1 (or fp round-up)
  const double frac = h - static_cast<double>(lo);
  return sorted_samples[lo] + frac * (sorted_samples[lo + 1] - sorted_samples[lo]);
}

double percentile(std::vector<double> samples, double p) {
  HYDRA_REQUIRE(!samples.empty(), "percentile needs at least one sample");
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, p);
}

MeanCi mean_ci95(const std::vector<double>& samples) {
  const Summary s = summarize(samples);
  MeanCi ci;
  ci.mean = s.mean;
  if (s.count < 2) {
    ci.lo = ci.hi = s.mean;
    return ci;
  }
  // Sample (n−1) standard deviation from the population value.
  const double n = static_cast<double>(s.count);
  const double sample_sd = s.stddev * std::sqrt(n / (n - 1.0));
  const double half = 1.96 * sample_sd / std::sqrt(n);
  ci.lo = s.mean - half;
  ci.hi = s.mean + half;
  return ci;
}

double improvement_percent(double ours, double baseline) {
  if (baseline == 0.0) return ours == 0.0 ? 0.0 : 100.0;
  return (ours - baseline) / baseline * 100.0;
}

double gap_percent(double reference, double approx) {
  if (reference == 0.0) return 0.0;
  return (reference - approx) / reference * 100.0;
}

double acceptance_improvement_percent(double hydra_ratio, double single_core_ratio) {
  if (hydra_ratio == 0.0) return 0.0;
  return (hydra_ratio - single_core_ratio) / hydra_ratio * 100.0;
}

}  // namespace hydra::stats
