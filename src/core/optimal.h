// The 'Optimal' comparator (paper §IV-B.2): exhaustive search over all M^NS
// security-task-to-core assignments; for each assignment the period vector is
// optimized jointly (core/joint_period).  Exponential in NS — the paper (and
// this library) uses it only on small instances (M = 2, NS ≤ 6, Fig. 3).
#pragma once

#include <cstddef>
#include <string>

#include "core/allocator.h"
#include "core/instance.h"
#include "core/joint_period.h"
#include "rt/partition.h"

namespace hydra::core {

struct OptimalOptions {
  JointPeriodOptions joint;  ///< per-assignment period optimization
  /// Hard cap on M^NS enumerations; exceeding it throws std::invalid_argument
  /// so a misconfigured sweep fails fast instead of running for hours.
  std::size_t max_assignments = 1u << 20;
};

class OptimalAllocator : public Allocator {
 public:
  explicit OptimalAllocator(OptimalOptions options = {})
      : Allocator("optimal"), options_(options) {}

  /// Exhaustive search against an externally supplied RT partition (same
  /// contract as HydraAllocator::allocate).
  Allocation allocate(const Instance& instance,
                      const rt::Partition& rt_partition) const override;

  /// Best-fit-partitions the RT tasks over all M cores first.
  Allocation allocate(const Instance& instance) const override;

  std::string describe() const override;
  util::Millis blocking() const override { return options_.joint.blocking; }
  /// M^NS: the number of assignments the exhaustive search enumerates.
  double search_space(const Instance& instance) const override;

  const OptimalOptions& options() const { return options_; }

 private:
  OptimalOptions options_;
};

}  // namespace hydra::core
