// Ablation: the paper's linear interference bound (Eq. 5) vs exact
// response-time analysis inside HYDRA's period-adaptation subproblem.
//
// Eq. (5) charges every interferer ⌈·⌉-free as (1 + Ts/T)·C, which
// over-approximates the true preemption count.  Exact RTA admits tighter
// periods and more tasksets; the bound buys closed-form/GP solvability.
// This bench measures what the approximation costs: acceptance ratio and
// mean normalized tightness across a utilization sweep.
//
// Usage: bench_ablation_exact_rta [--cores 2] [--tasksets 100] [--seed 23]
//                                 [--csv]
#include <iostream>
#include <vector>

#include "core/hydra.h"
#include "core/validation.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "sec/tightness.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("cores", 2));
  const int tasksets = static_cast<int>(cli.get_int("tasksets", 100));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 23));
  const bool csv = cli.get_bool("csv", false);

  io::print_banner(std::cout,
                   "Ablation: Eq. (5) linear bound vs exact RTA (M = " + std::to_string(m) + ")");

  gen::SyntheticConfig config;
  config.num_cores = m;

  core::HydraOptions exact_opts;
  exact_opts.solver = core::PeriodSolver::kExactRta;
  const core::HydraAllocator bound_alloc;             // paper's Eq. (5)
  const core::HydraAllocator exact_alloc(exact_opts); // exact RTA

  io::Table table({"utilization", "accept bound", "accept exact", "tightness bound",
                   "tightness exact"});

  for (const double phase : {0.3, 0.5, 0.7, 0.85, 0.95}) {
    const double u = phase * static_cast<double>(m);
    hydra::util::Xoshiro256 rng(seed);
    hydra::stats::AcceptanceCounter bound_counter, exact_counter;
    std::vector<double> bound_tightness, exact_tightness;

    for (int rep = 0; rep < tasksets; ++rep) {
      auto trial_rng = rng.fork();
      const auto drawn = gen::generate_filtered_instance(config, u, trial_rng);
      if (!drawn.has_value()) {
        bound_counter.record(false);
        exact_counter.record(false);
        continue;
      }
      const auto& inst = drawn->instance;
      const double upper = hydra::sec::max_cumulative_tightness(inst.security_tasks);

      const auto via_bound = bound_alloc.allocate(inst);
      bound_counter.record(via_bound.feasible);
      if (via_bound.feasible) {
        bound_tightness.push_back(via_bound.cumulative_tightness(inst.security_tasks) / upper);
      }
      const auto via_exact = exact_alloc.allocate(inst);
      exact_counter.record(via_exact.feasible);
      if (via_exact.feasible) {
        exact_tightness.push_back(via_exact.cumulative_tightness(inst.security_tasks) / upper);
        // Exact allocations must re-validate under exact RTA.
        const auto report = core::validate_allocation(
            inst, via_exact, 0.0, std::nullopt, core::ScheduleTest::kExactRta);
        if (!report.valid) {
          std::cerr << "VALIDATION FAILURE: " << report.problem << "\n";
          return 1;
        }
      }
    }

    const auto mean_or_dash = [](const std::vector<double>& v) {
      return v.empty() ? std::string("-") : io::fmt(hydra::stats::summarize(v).mean, 3);
    };
    table.add_row({io::fmt(u, 2), io::fmt(bound_counter.ratio(), 3),
                   io::fmt(exact_counter.ratio(), 3), mean_or_dash(bound_tightness),
                   mean_or_dash(exact_tightness)});
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nReading: exact RTA never accepts fewer tasksets and never "
               "yields looser periods; the gap is the price of the paper's "
               "closed-form/GP-friendly bound.\n";
  return 0;
}
