// Tests for the pluggable Allocator interface and the scheme registry.
#include <gtest/gtest.h>

#include "core/allocator.h"
#include "core/hydra.h"
#include "core/optimal.h"
#include "core/registry.h"
#include "core/single_core.h"
#include "gen/uav.h"

namespace core = hydra::core;

TEST(AllocatorRegistry, GlobalContainsThePaperSchemesAndAblations) {
  const auto& registry = core::AllocatorRegistry::global();
  for (const char* name :
       {"hydra", "hydra/gp", "hydra/exact-rta", "hydra/first-fit",
        "hydra/least-loaded", "hydra/worst-tightness", "hydra/tie=lowest-index",
        "single-core", "single-core/joint", "optimal", "optimal/sum-surrogate",
        "contego", "contego/no-adapt", "period-adapt", "period-adapt/gp",
        "util/worst-fit", "util/best-fit"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.description(name).empty()) << name;
  }
  // The paper's schemes, the HYDRA ablations, and the adaptive families.
  EXPECT_GE(registry.names().size(), 15u);
}

TEST(AllocatorRegistry, EveryRegisteredNameConstructsAndAllocates) {
  // Round-trip: every entry constructs, reports the registered name, and
  // produces a feasible, independently validated allocation on the M = 2 UAV
  // case study (which every scheme — even the adversarial ablation — solves).
  const auto& registry = core::AllocatorRegistry::global();
  const auto instance = hydra::gen::uav_case_study(2);
  for (const auto& name : registry.names()) {
    const auto scheme = registry.make(name);
    ASSERT_NE(scheme, nullptr) << name;
    EXPECT_EQ(scheme->name(), name);
    EXPECT_FALSE(scheme->describe().empty()) << name;
    const auto point = core::evaluate_scheme(*scheme, instance);
    EXPECT_EQ(point.scheme, name);
    EXPECT_TRUE(point.allocation.feasible) << name;
    EXPECT_TRUE(point.validated) << name << ": " << point.validation_problem;
    EXPECT_GT(point.cumulative_tightness, 0.0) << name;
  }
}

TEST(AllocatorRegistry, UnknownNameThrowsAndListsKnownOnes) {
  try {
    core::AllocatorRegistry::global().make("no-such-scheme");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scheme"), std::string::npos);
    EXPECT_NE(what.find("hydra"), std::string::npos);  // lists registered names
  }
}

TEST(AllocatorRegistry, MakeAllFollowsSelectionOrder) {
  const auto schemes =
      core::AllocatorRegistry::global().make_all({"single-core", "hydra", "optimal"});
  ASSERT_EQ(schemes.size(), 3u);
  EXPECT_EQ(schemes[0]->name(), "single-core");
  EXPECT_EQ(schemes[1]->name(), "hydra");
  EXPECT_EQ(schemes[2]->name(), "optimal");
  EXPECT_THROW(core::AllocatorRegistry::global().make_all({}), std::invalid_argument);
}

TEST(Allocator, SearchSpaceReflectsSchemeCost) {
  const auto instance = hydra::gen::uav_case_study(2);  // M = 2, NS = 6
  EXPECT_DOUBLE_EQ(core::HydraAllocator().search_space(instance), 1.0);
  EXPECT_DOUBLE_EQ(core::OptimalAllocator().search_space(instance), 64.0);
}

TEST(AllocatorRegistry, RejectsDuplicatesAndBadEntries) {
  core::AllocatorRegistry registry;
  registry.add("mine", "a scheme", [] { return std::make_unique<core::HydraAllocator>(); });
  EXPECT_THROW(registry.add("mine", "again",
                            [] { return std::make_unique<core::HydraAllocator>(); }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("", "anon",
                            [] { return std::make_unique<core::HydraAllocator>(); }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("null", "no factory", nullptr), std::invalid_argument);
}

TEST(Allocator, ValidationContractMatchesOptions) {
  core::HydraOptions exact;
  exact.solver = core::PeriodSolver::kExactRta;
  EXPECT_EQ(core::HydraAllocator(exact).schedule_test(), core::ScheduleTest::kExactRta);
  EXPECT_EQ(core::HydraAllocator().schedule_test(), core::ScheduleTest::kLinearBound);

  core::SingleCoreOptions blocking;
  blocking.blocking = 2.5;
  EXPECT_DOUBLE_EQ(core::SingleCoreAllocator(blocking).blocking(), 2.5);
  EXPECT_EQ(core::SingleCoreAllocator().priority_order(), std::nullopt);
}

TEST(Allocator, PolymorphicUseThroughTheBaseInterface) {
  const auto instance = hydra::gen::uav_case_study(2);
  const auto& registry = core::AllocatorRegistry::global();
  // The exact-RTA variant admits periods at least as tight as the paper
  // configuration — checked entirely through Allocator*.
  const auto base = registry.make("hydra");
  const auto exact = registry.make("hydra/exact-rta");
  const auto p_base = core::evaluate_scheme(*base, instance);
  const auto p_exact = core::evaluate_scheme(*exact, instance);
  ASSERT_TRUE(p_base.allocation.feasible);
  ASSERT_TRUE(p_exact.allocation.feasible);
  EXPECT_GE(p_exact.cumulative_tightness, p_base.cumulative_tightness - 1e-9);
}

TEST(Allocator, SharedPartitionOverloadAgreesWithConvenienceOverload) {
  const auto instance = hydra::gen::uav_case_study(2);
  const auto partition = hydra::rt::partition_rt_tasks(instance.rt_tasks, 2);
  ASSERT_TRUE(partition.has_value());
  const auto scheme = core::AllocatorRegistry::global().make("hydra");
  const auto direct = scheme->allocate(instance);
  const auto pinned = scheme->allocate(instance, *partition);
  ASSERT_TRUE(direct.feasible);
  ASSERT_TRUE(pinned.feasible);
  EXPECT_DOUBLE_EQ(direct.cumulative_tightness(instance.security_tasks),
                   pinned.cumulative_tightness(instance.security_tasks));
}
