// Synthetic workload generator reproducing the paper's §IV-B setup:
//
//   * M ∈ {2, 4, 8} cores;
//   * NR ∈ [3M, 10M] real-time tasks, NS ∈ [2M, 5M] security tasks;
//   * RT periods in [10, 1000] ms (log-uniform, the convention of [23]);
//   * security desired periods in [1000, 3000] ms, Tmax = 10·Tdes;
//   * total security utilization at most 30 % of the RT utilization — we pin
//     it at exactly 30 % (U_rt = U/1.3, U_sec = 0.3·U_rt) so a target total
//     utilization U decomposes deterministically;
//   * individual utilizations from Randfixedsum (unbiased);
//   * tasksets failing the Eq. (1) necessary condition are discarded.
#pragma once

#include <cstddef>
#include <optional>

#include "core/instance.h"
#include "util/rng.h"

namespace hydra::gen {

/// Which unbiased utilization generator to use (DESIGN.md: the paper uses
/// Randfixedsum [23]; UUniFast-Discard is the common alternative).
enum class UtilGenerator {
  kRandfixedsum,
  kUunifastDiscard,
};

struct SyntheticConfig {
  std::size_t num_cores = 2;  ///< M
  UtilGenerator util_generator = UtilGenerator::kRandfixedsum;

  // Task counts, per-core multipliers as in the paper.
  std::size_t min_rt_per_core = 3;
  std::size_t max_rt_per_core = 10;
  std::size_t min_sec_per_core = 2;
  std::size_t max_sec_per_core = 5;

  // Period ranges (ms).
  double rt_period_lo = 10.0;
  double rt_period_hi = 1000.0;
  double sec_period_des_lo = 1000.0;
  double sec_period_des_hi = 3000.0;
  double sec_period_max_factor = 10.0;  ///< Tmax = factor · Tdes

  /// U_sec / U_rt ratio (paper: "no more than 30%"; we use exactly this).
  double sec_util_ratio = 0.3;

  /// Per-task utilization cap handed to Randfixedsum.
  double max_task_utilization = 1.0;
};

/// One generated instance.  `rt_utilization + sec_utilization` equals the
/// requested total (up to rounding).
struct SyntheticInstance {
  core::Instance instance;
  double rt_utilization = 0.0;
  double sec_utilization = 0.0;
};

/// Draws an instance with the given total utilization (RT + security).
/// Returns nullopt when the draw is structurally impossible (e.g. utilization
/// so high that even NR tasks at cap cannot reach it) — callers typically
/// redraw.  Does NOT apply the Eq. (1) filter; see below.
std::optional<SyntheticInstance> generate_instance(const SyntheticConfig& config,
                                                   double total_utilization,
                                                   util::Xoshiro256& rng);

/// The paper's pre-filter: Eq. (1) over the RT tasks on M cores.  (Security
/// tasks enter the schedulability analysis proper, not this filter.)
bool satisfies_necessary_condition(const core::Instance& instance);

/// Draws instances until one passes `satisfies_necessary_condition`, up to
/// `max_attempts` (then nullopt — the utilization point is hopeless).
std::optional<SyntheticInstance> generate_filtered_instance(const SyntheticConfig& config,
                                                            double total_utilization,
                                                            util::Xoshiro256& rng,
                                                            int max_attempts = 64);

}  // namespace hydra::gen
