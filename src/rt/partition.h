// Partitioned multiprocessor assignment of RT tasks (Davis & Burns survey
// [13]).  The paper assumes the RT tasks are already partitioned; its
// synthetic evaluation (§IV-B) uses best-fit, and the SingleCore comparator
// packs RT tasks on M−1 cores.  Admission on each core uses exact RTA under
// rate-monotonic priorities, not just a utilization bound.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "rt/task.h"

namespace hydra::rt {

enum class FitStrategy {
  kFirstFit,  ///< lowest-index feasible core
  kBestFit,   ///< feasible core left with the least spare utilization
  kWorstFit,  ///< feasible core left with the most spare utilization
  kNextFit,   ///< rotating cursor, advance on failure
};

struct PartitionOptions {
  FitStrategy strategy = FitStrategy::kBestFit;
  /// Sort tasks by decreasing utilization before placing (the classic
  /// "-decreasing" bin-packing variants); improves packing quality.
  bool decreasing_utilization = true;
};

/// A completed RT partition: core_of[i] is the core (0-based) of task i.
struct Partition {
  std::size_t num_cores = 0;
  std::vector<std::size_t> core_of;

  /// Tasks assigned to a given core, in input order.
  std::vector<RtTask> tasks_on_core(const std::vector<RtTask>& tasks, std::size_t core) const;

  /// Per-core total utilization.
  std::vector<double> core_utilizations(const std::vector<RtTask>& tasks) const;
};

/// Partitions `tasks` over `num_cores` cores; returns nullopt when the chosen
/// heuristic cannot place some task such that every core stays RM-schedulable
/// (exact RTA admission).
std::optional<Partition> partition_rt_tasks(const std::vector<RtTask>& tasks,
                                            std::size_t num_cores,
                                            const PartitionOptions& options = {});

}  // namespace hydra::rt
