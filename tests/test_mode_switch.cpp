// Tests for the runtime mode-switching layer: mode-table construction, the
// controller's tighten/relax/hysteresis/budget semantics, determinism (fixed
// seed and --jobs byte-identity through a sweep), equivalence with the static
// engine when switching is disabled, and the latency-dominance property —
// mode-switching detection is never worse than the static minimum mode on
// feasible seeded batches.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/contego.h"
#include "core/mode_table.h"
#include "exp/metrics.h"
#include "exp/sinks.h"
#include "exp/sweep.h"
#include "gen/synthetic.h"
#include "gen/uav.h"
#include "sim/attack.h"
#include "sim/engine.h"
#include "sim/mode_switch.h"
#include "stats/summary.h"

namespace core = hydra::core;
namespace sim = hydra::sim;
namespace hexp = hydra::exp;
using hydra::util::SimTime;

namespace {

constexpr SimTime kMs = hydra::util::kTicksPerMilli;

sim::ModeTask fixed_task(const std::string& name, SimTime wcet, SimTime period,
                         std::size_t core, int priority, SimTime offset = 0) {
  sim::ModeTask mt;
  mt.task.name = name;
  mt.task.wcet = wcet;
  mt.task.period = period;
  mt.task.deadline = period;
  mt.task.core = core;
  mt.task.priority = priority;
  mt.task.release_offset = offset;
  return mt;
}

sim::ModeTask monitor_task(const std::string& name, SimTime wcet, SimTime min_period,
                           SimTime adapted_period, std::size_t core, int priority) {
  sim::ModeTask mt = fixed_task(name, wcet, min_period, core, priority);
  mt.adapted_period = adapted_period;
  return mt;
}

}  // namespace

// ---------------------------------------------------------------------------
// Mode tables (core layer)
// ---------------------------------------------------------------------------

TEST(ModeTable, BuiltFromFeasibleAllocation) {
  const auto instance = hydra::gen::uav_case_study(2);
  const auto allocation = core::ContegoAllocator().allocate(instance);
  ASSERT_TRUE(allocation.feasible);
  const auto table = core::build_mode_table(instance, allocation);
  ASSERT_EQ(table.modes.size(), instance.security_tasks.size());
  for (std::size_t s = 0; s < table.modes.size(); ++s) {
    const auto& mode = table.modes[s];
    EXPECT_EQ(mode.min_period, instance.security_tasks[s].period_max);
    EXPECT_GE(mode.adapted_period,
              instance.security_tasks[s].period_des - hydra::util::kTimeEpsilon);
    EXPECT_LE(mode.adapted_period, mode.min_period);
    EXPECT_EQ(mode.core, allocation.placements[s].core);
  }
  // Contego tightens the UAV monitors on 2 cores, so every mode has headroom.
  EXPECT_EQ(table.switchable_tasks(), instance.security_tasks.size());
}

TEST(ModeTable, NoAdaptAllocationHasNoHeadroom) {
  const auto instance = hydra::gen::uav_case_study(2);
  core::ContegoOptions options;
  options.adapt = false;
  const auto allocation = core::ContegoAllocator(options).allocate(instance);
  ASSERT_TRUE(allocation.feasible);
  const auto table = core::build_mode_table(instance, allocation);
  EXPECT_EQ(table.switchable_tasks(), 0u);
  for (std::size_t s = 0; s < table.modes.size(); ++s) {
    EXPECT_FALSE(table.has_headroom(s));
  }
}

TEST(ModeTable, RejectsInfeasibleAndOutOfBox) {
  const auto instance = hydra::gen::uav_case_study(2);
  core::Allocation infeasible;
  EXPECT_THROW(core::build_mode_table(instance, infeasible), std::invalid_argument);

  auto allocation = core::ContegoAllocator().allocate(instance);
  ASSERT_TRUE(allocation.feasible);
  allocation.placements[0].period = instance.security_tasks[0].period_max * 2.0;
  EXPECT_THROW(core::build_mode_table(instance, allocation), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Controller semantics
// ---------------------------------------------------------------------------

TEST(ModeController, TightensOnIdleCoreAtFirstBoundary) {
  // A monitor alone on a core: the first release with observed history
  // (t = min period) sees an almost idle window and tightens.
  const auto mon = monitor_task("mon", 10, 1000, 100, 0, 0);
  sim::ModeSwitchOptions opts;
  opts.horizon = 20000;
  const auto run = sim::simulate_mode_switching({mon}, opts);
  ASSERT_EQ(run.stats.switches[0], 1u);
  ASSERT_EQ(run.stats.events.size(), 1u);
  EXPECT_EQ(run.stats.events[0].task, 0u);
  EXPECT_EQ(run.stats.events[0].at, 1000u);
  EXPECT_TRUE(run.stats.events[0].to_adapted);
  // One minimum-mode job (the first), everything after in adapted mode.
  EXPECT_EQ(run.stats.min_jobs[0], 1u);
  EXPECT_EQ(run.stats.adapted_jobs[0], (20000u - 1000u) / 100u);
  EXPECT_EQ(run.trace.deadline_misses(), 0u);
}

TEST(ModeController, StaysConservativeWithoutSlack) {
  // RT demand 0.9 on the shared core: the idle fraction never reaches the
  // tighten threshold and the monitor never leaves minimum mode.
  const auto rt = fixed_task("rt", 90, 100, 0, 0);
  const auto mon = monitor_task("mon", 5, 1000, 100, 0, 1);
  sim::ModeSwitchOptions opts;
  opts.horizon = 50000;
  const auto run = sim::simulate_mode_switching({rt, mon}, opts);
  EXPECT_EQ(run.stats.total_switches(), 0u);
  EXPECT_EQ(run.stats.adapted_jobs[1], 0u);
  EXPECT_EQ(run.stats.adapted_residency[1], 0u);
  EXPECT_DOUBLE_EQ(run.stats.adapted_fraction(1), 0.0);
}

TEST(ModeController, FallsBackWhenLoadArrives) {
  // Idle start: the monitor tightens at its first boundary.  At t = 50 s a
  // 0.9-utilization RT task starts releasing; once the window fills with its
  // demand the monitor falls back to minimum mode and stays there.
  const auto rt = fixed_task("late_rt", 90, 100, 0, 0, /*offset=*/50000);
  const auto mon = monitor_task("mon", 10, 1000, 100, 0, 1);
  sim::ModeSwitchOptions opts;
  opts.horizon = 100000;
  const auto run = sim::simulate_mode_switching({rt, mon}, opts);
  ASSERT_EQ(run.stats.switches[1], 2u);
  ASSERT_EQ(run.stats.events.size(), 2u);
  EXPECT_TRUE(run.stats.events[0].to_adapted);
  EXPECT_EQ(run.stats.events[0].at, 1000u);
  EXPECT_FALSE(run.stats.events[1].to_adapted);
  EXPECT_GT(run.stats.events[1].at, 50000u);
  // Residency was spent in both modes and the fractions tile the timeline.
  EXPECT_GT(run.stats.adapted_residency[1], 0u);
  EXPECT_GT(run.stats.min_residency[1], 0u);
  const double frac = run.stats.adapted_fraction(1);
  EXPECT_GT(frac, 0.0);
  EXPECT_LT(frac, 1.0);
}

TEST(ModeController, ResidencyTilesTheReleaseTimeline) {
  const auto rt = fixed_task("late_rt", 90, 100, 0, 0, /*offset=*/30000);
  const auto mon = monitor_task("mon", 10, 1000, 100, 0, 1);
  sim::ModeSwitchOptions opts;
  opts.horizon = 80000;
  const auto run = sim::simulate_mode_switching({rt, mon}, opts);
  // Per-job accounting: min + adapted residency equals the sum of chosen
  // periods, which tiles [first release, beyond the horizon].
  const SimTime total = run.stats.min_residency[1] + run.stats.adapted_residency[1];
  EXPECT_GE(total, opts.horizon);
  EXPECT_LE(total, opts.horizon + 1000u);
  const double frac_sum =
      run.stats.adapted_fraction(1) +
      static_cast<double>(run.stats.min_residency[1]) / static_cast<double>(total);
  EXPECT_DOUBLE_EQ(frac_sum, 1.0);
  // Job counts match the residency accounting.
  EXPECT_EQ(run.stats.min_jobs[1] + run.stats.adapted_jobs[1], run.trace.jobs[1].size());
}

TEST(ModeController, HysteresisRateLimitsSwitches) {
  // Bursty RT load (4 s on, 4 s off) makes the controller want to flip at
  // every phase change.  min_dwell must space committed switches, and a
  // tighter dwell can only allow MORE switches.
  const auto burst = fixed_task("burst", 4000, 8000, 0, 0);
  auto mon = monitor_task("mon", 10, 500, 100, 0, 1);
  sim::ModeSwitchOptions opts;
  opts.horizon = 200000;
  opts.controller.slack_window = 2000;
  opts.controller.tighten_threshold = 0.4;
  opts.controller.relax_threshold = 0.2;
  opts.controller.min_dwell = 12000;
  const auto damped = sim::simulate_mode_switching({burst, mon}, opts);
  ASSERT_GT(damped.stats.total_switches(), 0u);
  for (std::size_t i = 1; i < damped.stats.events.size(); ++i) {
    EXPECT_GE(damped.stats.events[i].at - damped.stats.events[i - 1].at,
              opts.controller.min_dwell)
        << "switches " << i - 1 << " -> " << i << " violate the dwell";
  }

  auto fast = opts;
  fast.controller.min_dwell = 500;
  const auto undamped = sim::simulate_mode_switching({burst, mon}, fast);
  EXPECT_GE(undamped.stats.total_switches(), damped.stats.total_switches());
}

TEST(ModeController, SwitchBudgetIsAHardCap) {
  // Same bursty scenario, budget 1: exactly one committed switch, after
  // which the task is frozen in whatever mode it reached.
  const auto burst = fixed_task("burst", 4000, 8000, 0, 0);
  const auto mon = monitor_task("mon", 10, 500, 100, 0, 1);
  sim::ModeSwitchOptions opts;
  opts.horizon = 200000;
  opts.controller.slack_window = 2000;
  opts.controller.tighten_threshold = 0.4;
  opts.controller.relax_threshold = 0.2;
  opts.controller.min_dwell = 500;
  opts.controller.switch_budget = 1;
  const auto run = sim::simulate_mode_switching({burst, mon}, opts);
  EXPECT_EQ(run.stats.switches[1], 1u);
  EXPECT_EQ(run.stats.total_switches(), 1u);
}

TEST(ModeController, ValidatesInputs) {
  const auto mon = monitor_task("mon", 10, 1000, 100, 0, 0);
  sim::ModeSwitchOptions opts;
  opts.horizon = 10000;

  auto bad_thresholds = opts;
  bad_thresholds.controller.relax_threshold = 0.5;
  bad_thresholds.controller.tighten_threshold = 0.5;
  EXPECT_THROW(sim::simulate_mode_switching({mon}, bad_thresholds),
               std::invalid_argument);

  // Regression: a tighten threshold above 1 used to be accepted silently and
  // produced a controller that could never switch (the idle fraction is a
  // ratio).  Same for a negative relax threshold.
  auto unreachable_tighten = opts;
  unreachable_tighten.controller.tighten_threshold = 2.0;
  EXPECT_THROW(sim::simulate_mode_switching({mon}, unreachable_tighten),
               std::invalid_argument);

  auto negative_relax = opts;
  negative_relax.controller.relax_threshold = -0.1;
  EXPECT_THROW(sim::simulate_mode_switching({mon}, negative_relax),
               std::invalid_argument);

  auto nan_threshold = opts;
  nan_threshold.controller.tighten_threshold = std::nan("");
  EXPECT_THROW(sim::simulate_mode_switching({mon}, nan_threshold),
               std::invalid_argument);

  // A zero switch budget is a controller that can never act — say it with the
  // never-switch policy instead.
  auto zero_budget = opts;
  zero_budget.controller.switch_budget = 0;
  EXPECT_THROW(sim::simulate_mode_switching({mon}, zero_budget),
               std::invalid_argument);

  auto one_level = opts;
  one_level.controller.num_levels = 1;
  EXPECT_THROW(sim::simulate_mode_switching({mon}, one_level),
               std::invalid_argument);

  auto unknown_policy = opts;
  unknown_policy.controller.policy = "no-such-policy";
  EXPECT_THROW(sim::simulate_mode_switching({mon}, unknown_policy),
               std::invalid_argument);

  // Intermediate ladder rungs must be strictly decreasing inside
  // (adapted, minimum).
  auto bad_ladder = mon;
  bad_ladder.levels = {1200};  // above the minimum-mode period
  EXPECT_THROW(sim::simulate_mode_switching({bad_ladder}, opts),
               std::invalid_argument);

  auto unsorted_attacks = opts;
  unsorted_attacks.attack_times = {500, 200};
  EXPECT_THROW(sim::simulate_mode_switching({mon}, unsorted_attacks),
               std::invalid_argument);

  auto above_min = mon;
  above_min.adapted_period = 2000;  // adapted must not loosen past minimum mode
  EXPECT_THROW(sim::simulate_mode_switching({above_min}, opts), std::invalid_argument);

  auto below_wcet = mon;
  below_wcet.adapted_period = 5;
  EXPECT_THROW(sim::simulate_mode_switching({below_wcet}, opts), std::invalid_argument);

  const auto dup_a = monitor_task("a", 10, 1000, 100, 0, 3);
  const auto dup_b = monitor_task("b", 10, 1000, 100, 0, 3);
  EXPECT_THROW(sim::simulate_mode_switching({dup_a, dup_b}, opts),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Equivalence and determinism
// ---------------------------------------------------------------------------

TEST(ModeSwitchDeterminism, NeverSwitchingEqualsStaticMinimumMode) {
  // Under the never-switch policy the controller is inert: the trace must
  // equal the plain engine's on the minimum-mode task list, job by job.
  // (Historically this test faked inertness with tighten_threshold = 1.5;
  // config validation now rejects out-of-[0,1] thresholds, and the registry
  // says it properly.)
  const auto instance = hydra::gen::uav_case_study(2);
  const auto allocation = core::ContegoAllocator().allocate(instance);
  ASSERT_TRUE(allocation.feasible);
  const auto table = core::build_mode_table(instance, allocation);
  const auto mode_tasks = sim::build_mode_tasks(instance, allocation, table);

  sim::ModeSwitchOptions mopts;
  mopts.horizon = 120000u * kMs;
  mopts.controller.policy = "never-switch";
  const auto adaptive = sim::simulate_mode_switching(mode_tasks, mopts);
  EXPECT_EQ(adaptive.stats.total_switches(), 0u);

  std::vector<sim::SimTask> min_mode;
  for (const auto& mt : mode_tasks) min_mode.push_back(mt.task);
  sim::SimOptions sopts;
  sopts.horizon = mopts.horizon;
  const auto static_run = sim::simulate(min_mode, sopts);

  ASSERT_EQ(adaptive.trace.jobs.size(), static_run.jobs.size());
  for (std::size_t t = 0; t < static_run.jobs.size(); ++t) {
    ASSERT_EQ(adaptive.trace.jobs[t].size(), static_run.jobs[t].size()) << "task " << t;
    for (std::size_t k = 0; k < static_run.jobs[t].size(); ++k) {
      EXPECT_EQ(adaptive.trace.jobs[t][k].release, static_run.jobs[t][k].release);
      EXPECT_EQ(adaptive.trace.jobs[t][k].start, static_run.jobs[t][k].start);
      EXPECT_EQ(adaptive.trace.jobs[t][k].completion, static_run.jobs[t][k].completion);
      EXPECT_EQ(adaptive.trace.jobs[t][k].completed, static_run.jobs[t][k].completed);
    }
  }
  EXPECT_EQ(adaptive.trace.core_busy, static_run.core_busy);
}

TEST(ModeSwitchDeterminism, FixedSeedReproducesTraceAndEvents) {
  // Jitter + execution variation exercise every RNG path; two runs with the
  // same seed must agree on every job, residency counter, and switch event.
  auto rt = fixed_task("rt", 40, 100, 0, 0);
  rt.task.release_jitter = 30;
  rt.task.exec_fraction_min = 0.5;
  auto mon = monitor_task("mon", 10, 1000, 100, 0, 1);
  mon.task.exec_fraction_min = 0.7;
  auto rt2 = fixed_task("rt2", 20, 80, 1, 0);
  rt2.task.exec_fraction_min = 0.6;
  const auto mon2 = monitor_task("mon2", 15, 2000, 400, 1, 1);

  sim::ModeSwitchOptions opts;
  opts.horizon = 100000;
  opts.seed = 77;
  const auto a = sim::simulate_mode_switching({rt, mon, rt2, mon2}, opts);
  const auto b = sim::simulate_mode_switching({rt, mon, rt2, mon2}, opts);

  ASSERT_EQ(a.trace.total_jobs(), b.trace.total_jobs());
  for (std::size_t t = 0; t < a.trace.jobs.size(); ++t) {
    for (std::size_t k = 0; k < a.trace.jobs[t].size(); ++k) {
      EXPECT_EQ(a.trace.jobs[t][k].release, b.trace.jobs[t][k].release);
      EXPECT_EQ(a.trace.jobs[t][k].completion, b.trace.jobs[t][k].completion);
    }
  }
  EXPECT_EQ(a.stats.switches, b.stats.switches);
  EXPECT_EQ(a.stats.min_residency, b.stats.min_residency);
  EXPECT_EQ(a.stats.adapted_residency, b.stats.adapted_residency);
  ASSERT_EQ(a.stats.events.size(), b.stats.events.size());
  for (std::size_t i = 0; i < a.stats.events.size(); ++i) {
    EXPECT_EQ(a.stats.events[i].task, b.stats.events[i].task);
    EXPECT_EQ(a.stats.events[i].at, b.stats.events[i].at);
    EXPECT_EQ(a.stats.events[i].to_adapted, b.stats.events[i].to_adapted);
  }
}

TEST(ModeSwitchDeterminism, SweepRowStreamIsIndependentOfJobCount) {
  // The adaptive metric family rides exp::Sweep worker threads; the row
  // stream (metrics included) must be byte-identical for any --jobs value.
  hexp::AdaptiveMetricsConfig config;
  config.detection.horizon = 120u * 1000u * kMs;
  config.detection.trials = 25;
  config.detection.seed = 11;
  config.include_global = true;

  const auto spec_for = [&](std::size_t jobs) {
    hexp::SweepSpec spec;
    spec.schemes = {"contego"};
    spec.replications = 3;
    spec.base_seed = 42;
    spec.jobs = jobs;
    spec.metrics = hexp::adaptive_detection_metrics(config);
    hydra::gen::SyntheticConfig synth;
    synth.num_cores = 2;
    spec.add_utilization_grid(synth, {0.8});
    return spec;
  };

  std::ostringstream serial, parallel;
  hexp::JsonlSink serial_sink(serial), parallel_sink(parallel);
  hexp::Sweep(spec_for(1)).run({&serial_sink});
  hexp::Sweep(spec_for(4)).run({&parallel_sink});
  EXPECT_FALSE(serial.str().empty());
  EXPECT_EQ(serial.str(), parallel.str());
  // The metric names actually made it into the rows.
  EXPECT_NE(serial.str().find("adaptive_mean_detection_ms"), std::string::npos);
  EXPECT_NE(serial.str().find("global_mean_detection_ms"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Detection under adaptation
// ---------------------------------------------------------------------------

TEST(AdaptiveDetection, CaseStudyRunsCleanAndReportsModes) {
  const auto instance = hydra::gen::uav_case_study(2);
  const auto allocation = core::ContegoAllocator().allocate(instance);
  ASSERT_TRUE(allocation.feasible);
  sim::DetectionConfig config;
  config.horizon = 150u * 1000u * kMs;
  config.trials = 60;
  config.seed = 9;
  const auto result = sim::measure_detection_times_adaptive(instance, allocation, config);
  EXPECT_EQ(result.detection.deadline_misses, 0u);
  EXPECT_EQ(result.detection.undetected, 0u);
  EXPECT_EQ(result.detection.detection_ms.size(), config.trials);
  // Contego leaves headroom on every UAV monitor at M = 2, and the idle
  // security core lets the controller spend it.
  EXPECT_EQ(result.switchable_tasks.size(), instance.security_tasks.size());
  EXPECT_GT(result.modes.total_switches(), 0u);
  EXPECT_GT(result.modes.mean_adapted_fraction(result.switchable_tasks), 0.5);
}

TEST(AdaptiveDetection, LatencyDominatesStaticMinimumMode) {
  // The ISSUE-4 property: on feasible seeded batches, mean detection latency
  // under mode switching is never worse than the static minimum mode — the
  // controller only ever *adds* monitoring frequency relative to the
  // fallback, and it does so exactly when slack exists.
  hydra::gen::SyntheticConfig config;
  config.num_cores = 2;
  hydra::util::Xoshiro256 rng(2024);
  sim::DetectionConfig det;
  det.horizon = 150u * 1000u * kMs;
  det.trials = 60;
  det.seed = 31;

  std::size_t compared = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto drawn = hydra::gen::generate_filtered_instance(config, 1.0, rng);
    if (!drawn.has_value()) continue;
    const auto allocation = core::ContegoAllocator().allocate(drawn->instance);
    if (!allocation.feasible) continue;

    const auto adaptive =
        sim::measure_detection_times_adaptive(drawn->instance, allocation, det);
    const auto fallback = sim::measure_detection_times(
        drawn->instance, core::min_mode_allocation(drawn->instance, allocation), det);
    ASSERT_GT(adaptive.detection.detection_ms.size(), 0u);
    ASSERT_GT(fallback.detection_ms.size(), 0u);
    EXPECT_EQ(adaptive.detection.deadline_misses, 0u);
    const double adaptive_mean =
        hydra::stats::summarize(adaptive.detection.detection_ms).mean;
    const double fallback_mean = hydra::stats::summarize(fallback.detection_ms).mean;
    EXPECT_LE(adaptive_mean, fallback_mean * 1.02) << "instance " << i;
    ++compared;
  }
  ASSERT_GE(compared, 3u) << "batch produced too few feasible comparisons";
}

TEST(AdaptiveDetection, TickRoundingCollapseYieldsFixedTask) {
  // A mode pair whose headroom vanishes at tick resolution must come out of
  // build_mode_tasks as fixed (adapted_period == 0), not as a 0-tick switcher.
  core::Instance instance;
  instance.num_cores = 1;
  instance.rt_tasks.push_back(hydra::rt::make_rt_task("rt", 1.0, 10.0));
  instance.security_tasks.push_back(
      hydra::rt::make_security_task("s", 0.5, 100.0, 100.0001));
  core::Allocation allocation;
  allocation.feasible = true;
  allocation.rt_partition.num_cores = 1;
  allocation.rt_partition.core_of = {0};
  allocation.placements = {core::TaskPlacement{0, 100.00005, 1.0}};
  const auto table = core::build_mode_table(instance, allocation);
  const auto tasks = sim::build_mode_tasks(instance, allocation, table);
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[1].adapted_period, 0u);
}
