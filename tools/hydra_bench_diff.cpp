// hydra_bench_diff: compare two google-benchmark JSON result files by
// benchmark name and print per-benchmark deltas of real_time (and
// items_per_second where reported).
//
//     bench_micro --benchmark_format=json --benchmark_out=now.json
//     hydra_bench_diff BENCH_baseline.json now.json
//
// Options:
//   --markdown        emit a GitHub-flavored table (for $GITHUB_STEP_SUMMARY)
//   --fail-over PCT   exit 4 if any benchmark's real_time regressed by more
//                     than PCT percent (absent = report only, exit 0)
//
// Exit codes: 0 compared (no enforced regression), 4 regression over the
// --fail-over threshold, 1 unreadable inputs, 2 usage.
//
// The parser leans on the shape google-benchmark actually emits — a
// pretty-printed "benchmarks" array with one field per line — rather than
// carrying a full JSON parser for two numeric fields.
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.h"

namespace {

struct BenchRow {
  double real_time = 0.0;          ///< nanoseconds unless time_unit says otherwise
  std::string time_unit = "ns";
  double items_per_second = -1.0;  ///< -1 = not reported
};

/// Value of `"key": <...>` on this line, or "" when the key is absent.
std::string field_on_line(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::size_t pos = line.find(':', at + needle.size());
  if (pos == std::string::npos) return "";
  ++pos;
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  std::size_t end = line.size();
  while (end > pos && (line[end - 1] == ',' || line[end - 1] == ' ' ||
                       line[end - 1] == '\r')) {
    --end;
  }
  std::string value = line.substr(pos, end - pos);
  if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
    value = value.substr(1, value.size() - 2);
  }
  return value;
}

std::map<std::string, BenchRow> load_results(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read benchmark file: " + path);
  std::map<std::string, BenchRow> rows;
  std::string line, current;
  bool in_benchmarks = false;
  while (std::getline(in, line)) {
    if (!in_benchmarks) {
      if (line.find("\"benchmarks\"") != std::string::npos) in_benchmarks = true;
      continue;
    }
    const std::string name = field_on_line(line, "name");
    if (!name.empty()) {
      current = name;
      rows[current] = BenchRow{};
      continue;
    }
    if (current.empty()) continue;
    const std::string real_time = field_on_line(line, "real_time");
    if (!real_time.empty()) rows[current].real_time = std::stod(real_time);
    const std::string unit = field_on_line(line, "time_unit");
    if (!unit.empty()) rows[current].time_unit = unit;
    const std::string items = field_on_line(line, "items_per_second");
    if (!items.empty()) rows[current].items_per_second = std::stod(items);
  }
  if (rows.empty()) {
    throw std::runtime_error("no benchmarks found in " + path +
                             " (expected google-benchmark JSON)");
  }
  return rows;
}

std::string format_time(double value, const std::string& unit) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(value < 10 ? 3 : 1) << value << " " << unit;
  return out.str();
}

std::string format_delta(double pct) {
  std::ostringstream out;
  out << std::showpos << std::fixed << std::setprecision(1) << pct << "%";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const hydra::util::CliParser cli(argc, argv, /*allow_positionals=*/true,
                                     /*value_less_flags=*/{"markdown"});
    if (cli.positionals().size() != 2) {
      std::cerr << "usage: " << cli.program()
                << " [--markdown] [--fail-over PCT] baseline.json current.json\n";
      return 2;
    }
    const bool markdown = cli.get_bool("markdown", false);
    const double fail_over = cli.get_double("fail-over", -1.0);

    const auto baseline = load_results(cli.positionals()[0]);
    const auto current = load_results(cli.positionals()[1]);

    if (markdown) {
      std::cout << "| benchmark | baseline | current | real_time Δ | items/s Δ |\n"
                << "|---|---|---|---|---|\n";
    } else {
      std::cout << std::left << std::setw(44) << "benchmark" << std::setw(16)
                << "baseline" << std::setw(16) << "current" << std::setw(12)
                << "time Δ" << "items/s Δ\n";
    }

    std::vector<std::string> regressions;
    for (const auto& [name, now] : current) {
      const auto base_it = baseline.find(name);
      if (base_it == baseline.end()) {
        if (markdown) {
          std::cout << "| " << name << " | _new_ | "
                    << format_time(now.real_time, now.time_unit) << " | — | — |\n";
        } else {
          std::cout << std::left << std::setw(44) << name << std::setw(16) << "(new)"
                    << format_time(now.real_time, now.time_unit) << "\n";
        }
        continue;
      }
      const BenchRow& base = base_it->second;
      const double time_pct =
          base.real_time > 0.0
              ? (now.real_time - base.real_time) / base.real_time * 100.0
              : 0.0;
      std::string items_delta = "—";
      if (base.items_per_second > 0.0 && now.items_per_second > 0.0) {
        items_delta = format_delta((now.items_per_second - base.items_per_second) /
                                   base.items_per_second * 100.0);
      }
      if (markdown) {
        std::cout << "| " << name << " | "
                  << format_time(base.real_time, base.time_unit) << " | "
                  << format_time(now.real_time, now.time_unit) << " | "
                  << format_delta(time_pct) << " | " << items_delta << " |\n";
      } else {
        std::cout << std::left << std::setw(44) << name << std::setw(16)
                  << format_time(base.real_time, base.time_unit) << std::setw(16)
                  << format_time(now.real_time, now.time_unit) << std::setw(12)
                  << format_delta(time_pct) << items_delta << "\n";
      }
      if (fail_over >= 0.0 && time_pct > fail_over) {
        regressions.push_back(name + " " + format_delta(time_pct));
      }
    }
    for (const auto& [name, base] : baseline) {
      if (current.find(name) != current.end()) continue;
      if (markdown) {
        std::cout << "| " << name << " | "
                  << format_time(base.real_time, base.time_unit)
                  << " | _missing_ | — | — |\n";
      } else {
        std::cout << std::left << std::setw(44) << name << std::setw(16)
                  << format_time(base.real_time, base.time_unit) << "(missing)\n";
      }
    }

    if (!regressions.empty()) {
      std::cerr << "hydra_bench_diff: " << regressions.size()
                << " benchmark(s) regressed more than " << fail_over << "%:\n";
      for (const auto& regression : regressions) {
        std::cerr << "  " << regression << "\n";
      }
      return 4;
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "hydra_bench_diff: " << error.what() << "\n";
    return 1;
  }
}
