// Primal barrier interior-point method for smooth convex programs
//
//     minimize    F0(y)
//     subject to  Fi(y) < 0,  i = 1..p
//
// following Boyd & Vandenberghe, "Convex Optimization" [29, Ch. 11]: an outer
// loop increases the barrier weight t geometrically; each inner loop runs
// damped Newton with backtracking line search on
//
//     φ_t(y) = t·F0(y) − Σ_i log(−Fi(y)).
//
// The functions are supplied through the `SmoothFn` callback so both the GP
// phase-II problem (log-sum-exp functions) and the phase-I feasibility
// problem (log-sum-exp minus a slack variable) reuse the same machinery.
// Line searches request value-only evaluations (EvalLevel::kValue), which
// implementations should serve without computing derivatives.
#pragma once

#include <functional>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace hydra::gp {

/// How much of the evaluation the solver needs at this point.
enum class EvalLevel {
  kValue,  ///< value only (line searches); grad/hess may be left empty
  kFull,   ///< value, gradient and Hessian (Newton step assembly)
};

/// Value / gradient / Hessian bundle of a smooth scalar function.
struct FnEval {
  double value = 0.0;
  linalg::Vector grad;
  linalg::Matrix hess;  ///< filled only for EvalLevel::kFull
};

/// Callback evaluating a smooth convex function at y.
using SmoothFn = std::function<FnEval(const linalg::Vector& y, EvalLevel level)>;

struct BarrierOptions {
  double t0 = 8.0;              ///< initial barrier weight
  double mu = 30.0;             ///< barrier weight multiplier per outer step
  double duality_gap_tol = 1e-8;  ///< stop when p/t < tol
  /// Inner-loop stop: λ²/2 below this.  Self-concordance theory only needs
  /// modest centering (λ ≲ 0.25); demanding much more wastes Newton steps
  /// fighting floating-point noise at large t.
  double newton_tol = 1e-7;
  int max_newton_per_stage = 120;
  double armijo_alpha = 0.25;   ///< backtracking sufficient-decrease factor
  double backtrack_beta = 0.5;  ///< backtracking step shrink factor
  int max_backtracks = 40;
  /// Treat the problem as unbounded if the objective falls below this.
  double unbounded_below = -1e12;
};

enum class BarrierStatus {
  kOptimal,        ///< converged to tolerance
  kMaxIterations,  ///< iteration budget exhausted (best iterate returned)
  kUnbounded,      ///< objective diverged towards -inf
};

struct BarrierResult {
  BarrierStatus status = BarrierStatus::kMaxIterations;
  linalg::Vector y;          ///< final (strictly feasible) iterate
  double objective = 0.0;    ///< F0 at the final iterate
  int newton_steps = 0;      ///< total Newton iterations across stages
};

/// Minimizes F0 over {y : Fi(y) < 0 ∀i} starting from the *strictly feasible*
/// point y0.  Throws std::invalid_argument if y0 is not strictly feasible.
BarrierResult barrier_minimize(const SmoothFn& f0, const std::vector<SmoothFn>& constraints,
                               const linalg::Vector& y0, const BarrierOptions& opts = {});

}  // namespace hydra::gp
