#include "io/taskset_io.h"

#include <fstream>
#include <sstream>

#include "util/contracts.h"

namespace hydra::io {

namespace {

[[noreturn]] void parse_error(std::size_t line_no, const std::string& why) {
  throw std::invalid_argument("taskset parse error at line " + std::to_string(line_no) + ": " +
                              why);
}

/// Emits a double without trailing-zero noise (round-trips exactly).
std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string to_text(const core::Instance& instance) {
  std::ostringstream os;
  os << "# hydra taskset (times in ms)\n";
  os << "cores " << instance.num_cores << "\n";
  for (const auto& t : instance.rt_tasks) {
    os << "rt " << t.name << " " << num(t.wcet) << " " << num(t.period);
    if (t.deadline != t.period) os << " " << num(t.deadline);
    os << "\n";
  }
  for (const auto& s : instance.security_tasks) {
    os << "sec " << s.name << " " << num(s.wcet) << " " << num(s.period_des) << " "
       << num(s.period_max);
    if (s.weight != 1.0) os << " " << num(s.weight);
    os << "\n";
  }
  return os.str();
}

core::Instance instance_from_text(const std::string& text) {
  core::Instance instance;
  bool saw_cores = false;

  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;  // blank/comment line

    if (kind == "cores") {
      long long m = 0;
      if (!(fields >> m) || m < 1) parse_error(line_no, "cores expects a positive integer");
      instance.num_cores = static_cast<std::size_t>(m);
      saw_cores = true;
    } else if (kind == "rt") {
      std::string name;
      double wcet = 0.0, period = 0.0;
      if (!(fields >> name >> wcet >> period)) {
        parse_error(line_no, "rt expects: name wcet period [deadline]");
      }
      double deadline = period;
      if (double d = 0.0; fields >> d) deadline = d;  // optional field
      instance.rt_tasks.push_back(rt::RtTask{name, wcet, period, deadline});
    } else if (kind == "sec") {
      std::string name;
      double wcet = 0.0, t_des = 0.0, t_max = 0.0;
      if (!(fields >> name >> wcet >> t_des >> t_max)) {
        parse_error(line_no, "sec expects: name wcet tdes tmax [weight]");
      }
      double weight = 1.0;
      if (double w = 0.0; fields >> w) weight = w;  // optional field
      instance.security_tasks.push_back(rt::SecurityTask{name, wcet, t_des, t_max, weight});
    } else {
      parse_error(line_no, "unknown record '" + kind + "'");
    }
  }

  if (!saw_cores) throw std::invalid_argument("taskset parse error: missing 'cores' record");
  try {
    instance.validate();
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("taskset semantic error: ") + e.what());
  }
  return instance;
}

void save_instance(const core::Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << to_text(instance);
}

core::Instance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return instance_from_text(buffer.str());
}

}  // namespace hydra::io
