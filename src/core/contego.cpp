#include "core/contego.h"

#include <optional>

#include "gp/solver_registry.h"
#include "rt/interference.h"
#include "rt/priority.h"
#include "util/contracts.h"

namespace hydra::core {

namespace {

/// Per-core bookkeeping for the minimum-mode placement pass.
struct CoreState {
  std::vector<rt::RtTask> rt_tasks;
  std::vector<rt::PlacedSecurityTask> placed;     ///< committed at Tmax
  std::vector<std::size_t> members;               ///< security indices, priority order
  double utilization = 0.0;                       ///< RT + security-at-Tmax demand
  rt::InterferenceBound interferers;              ///< Eq. (5) sums, grown per commit
};

}  // namespace

Allocation ContegoAllocator::allocate(const Instance& instance,
                                      const rt::Partition& rt_partition) const {
  instance.validate();
  // Backend selection for the adapt_period GP subproblems travels through
  // the thread-local scope — adapt_period has no options parameter for it.
  std::optional<gp::GpBackendScope> backend_scope;
  if (!options_.gp_backend.empty()) backend_scope.emplace(options_.gp_backend);
  HYDRA_REQUIRE(rt_partition.num_cores == instance.num_cores,
                "RT partition core count must match the instance");
  HYDRA_REQUIRE(rt_partition.core_of.size() == instance.rt_tasks.size(),
                "RT partition does not cover the RT task set");

  std::vector<CoreState> cores(instance.num_cores);
  for (std::size_t c = 0; c < instance.num_cores; ++c) {
    cores[c].rt_tasks = rt_partition.tasks_on_core(instance.rt_tasks, c);
    for (const auto& t : cores[c].rt_tasks) cores[c].utilization += t.utilization();
    cores[c].interferers = rt::interference_bound(cores[c].rt_tasks, {});
  }

  Allocation result;
  result.rt_partition = rt_partition;
  result.placements.assign(instance.security_tasks.size(), TaskPlacement{});

  // Pass 1: admit every monitor in minimum mode (period Tmax), worst-fit by
  // total utilization so each core keeps the most residual slack.
  const auto order = rt::security_priority_order(instance.security_tasks);
  for (const std::size_t s : order) {
    const rt::SecurityTask& task = instance.security_tasks[s];
    std::optional<std::size_t> best_core;
    for (std::size_t c = 0; c < instance.num_cores; ++c) {
      if (!adapt_period(task, cores[c].interferers, options_.solver).feasible) continue;
      if (!best_core.has_value() ||
          cores[c].utilization < cores[*best_core].utilization) {
        best_core = c;
      }
    }
    if (!best_core.has_value()) {
      return infeasible_allocation(
          s, "no core admits security task '" + task.name + "' even in minimum mode");
    }
    result.placements[s] =
        TaskPlacement{*best_core, task.period_max, task.min_tightness()};
    cores[*best_core].placed.push_back(
        rt::PlacedSecurityTask{task.wcet, task.period_max});
    cores[*best_core].interferers.add_interferer(task.wcet, task.period_max);
    cores[*best_core].members.push_back(s);
    cores[*best_core].utilization += task.wcet / task.period_max;
  }

  // Pass 2: opportunistic tightening toward best mode, core by core.
  if (options_.adapt) {
    for (auto& core : cores) {
      tighten_core_placements(core.rt_tasks, core.members, instance.security_tasks,
                              result.placements, options_.adaptation_rounds,
                              options_.solver);
    }
  }

  result.feasible = true;
  return result;
}

Allocation ContegoAllocator::allocate(const Instance& instance) const {
  return allocate_with_default_partition(instance);
}

std::string ContegoAllocator::describe() const {
  std::string text =
      "Contego-style adaptive allocation: minimum-mode (Tmax) worst-fit placement";
  if (options_.adapt) {
    text += "; slack-aware opportunistic tightening (" +
            std::to_string(options_.adaptation_rounds) + " round" +
            (options_.adaptation_rounds == 1 ? "" : "s") + ")";
  } else {
    text += "; no adaptation (every monitor stays in minimum mode)";
  }
  if (options_.solver == PeriodSolver::kGeometricProgram) text += "; GP subproblem";
  if (!options_.gp_backend.empty()) text += "; gp-backend=" + options_.gp_backend;
  return text;
}

}  // namespace hydra::core
