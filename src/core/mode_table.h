// Runtime monitoring-mode tables (the Contego model, arXiv:1705.00138),
// generalized from the original {minimum, adapted} pair to an N-level ladder.
//
// An adaptive allocator commits, at design time, analysis-feasible period
// vectors for the security tasks on their assigned cores.  The two anchor
// modes are:
//
//   * the *minimum mode* — every monitor at its loosest acceptable period
//     Tmax (always-on baseline coverage, the fallback when the system is
//     loaded), and
//   * the *adapted mode* — the tightened periods the allocator's slack-aware
//     pass produced (Ts ∈ [Tdes, Tmax], best-effort toward Tdes).
//
// With `num_levels > 2` the table additionally commits intermediate levels,
// geometrically interpolated between Tmax and the committed period, so a
// runtime controller can step rates one rung at a time instead of jumping
// between the extremes.  Every level lies in [adapted, Tmax]: loosening a
// feasible allocation's periods keeps it feasible, so the whole ladder is
// analysis-feasible by construction — a controller may mix levels per task
// freely without re-running the analysis.
//
// The runtime mode-switching simulator (sim/mode_switch.h) walks each monitor
// up and down its ladder at job boundaries, driven by a registered controller
// policy (sim/controller.h).  A ModeTable is the design-time artifact handed
// across that seam: it is a pure function of (instance, allocation,
// num_levels), so ANY registered scheme — not just `contego` — yields a mode
// table (schemes that do not adapt simply commit adapted == placement period,
// possibly == Tmax).
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"

namespace hydra::core {

/// The committed period ladder of one security task on its assigned core.
/// `levels` is ordered slowest-to-fastest: levels.front() == min_period
/// (Tmax), levels.back() == adapted_period, strictly decreasing in between.
/// A task without headroom has the single level {Tmax}.
/// Invariant: Tdes <= adapted_period <= min_period == Tmax (validated).
struct SecurityMode {
  std::size_t core = 0;               ///< the placement core (fixed at runtime)
  util::Millis min_period = 0.0;      ///< minimum mode: the task's Tmax
  util::Millis adapted_period = 0.0;  ///< fastest mode: the allocation's period
  std::vector<util::Millis> levels;   ///< the full ladder, slowest first

  std::size_t num_levels() const { return levels.size(); }
};

/// Per-security-task mode table, parallel to Instance::security_tasks.
struct ModeTable {
  std::vector<SecurityMode> modes;

  /// True when task `s` has strictly tighter adapted than minimum mode, i.e.
  /// runtime switching can actually change its rate.
  bool has_headroom(std::size_t s) const;

  /// Number of tasks with headroom.
  std::size_t switchable_tasks() const;
};

/// Builds the mode table of a feasible allocation: minimum mode is each
/// task's Tmax, the fastest mode is the period the allocator committed, and
/// `num_levels >= 2` total levels are generated per monitor-with-headroom by
/// geometric interpolation between the two (level k of L:
/// Tmax · (adapted/Tmax)^(k/(L−1)) — equal period *ratios* between rungs, so
/// each step buys the same relative monitoring-frequency change).  Monitors
/// without headroom collapse to the single level {Tmax}.  Throws
/// std::invalid_argument on infeasible allocations, placements outside the
/// [Tdes, Tmax] box — an out-of-box period is an allocator bug, not a mode —
/// or num_levels < 2.
ModeTable build_mode_table(const Instance& instance, const Allocation& allocation,
                           std::size_t num_levels = 2);

/// The minimum-mode projection of a feasible allocation: identical cores,
/// every monitor at its Tmax (tightness = Tdes/Tmax).  Loosening a feasible
/// allocation's periods keeps it feasible, so the result needs no re-check.
/// This is the always-feasible fallback baseline the adaptive metrics, the
/// latency-dominance property test, and the walkthrough all compare against.
Allocation min_mode_allocation(const Instance& instance, const Allocation& allocation);

}  // namespace hydra::core
