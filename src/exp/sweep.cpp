#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/registry.h"
#include "core/scp_warm.h"
#include "exp/scp_warm.h"
#include "gp/solver_registry.h"
#include "sim/controller.h"

namespace hydra::exp {

void SweepSpec::add_utilization_grid(const gen::SyntheticConfig& config,
                                     const std::vector<double>& utilizations) {
  for (const double u : utilizations) {
    SweepPoint point;
    point.synthetic = config;
    point.total_utilization = u;
    points.push_back(std::move(point));
  }
}

void SweepSpec::add_corpus_point(const std::string& path_or_glob, std::string label) {
  SweepPoint point;
  point.files = expand_workload_files(path_or_glob);
  point.label = label.empty() ? path_or_glob : std::move(label);
  points.push_back(std::move(point));
}

std::vector<double> utilization_axis(std::size_t num_cores, std::size_t steps,
                                     double increment) {
  std::vector<double> axis;
  axis.reserve(steps);
  for (std::size_t step = 1; step <= steps; ++step) {
    axis.push_back(increment * static_cast<double>(step) * static_cast<double>(num_cores));
  }
  return axis;
}

std::uint64_t sweep_point_seed(std::uint64_t base_seed, std::size_t point_index) {
  // A distinct splitmix64 domain (the XOR constant) keeps a sweep's point-p
  // stream disjoint from a plain BatchSpec run using the same base seed.
  return instance_seed(base_seed ^ 0xC2B2AE3D27D4EB4FULL, point_index);
}

std::string sweep_cell_key(std::size_t point_index, const std::string& point_label,
                           std::size_t instance_index) {
  return "p" + std::to_string(point_index) + ":" + point_label + ":i" +
         std::to_string(instance_index);
}

namespace {

/// FNV-1a over a byte string — the shard partition and the spec fingerprint
/// both need a hash that is bit-stable across platforms and standard-library
/// versions, which rules out std::hash.
std::uint64_t fnv1a64(const char* data, std::size_t size,
                      std::uint64_t seed = 1469598103934665603ULL) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t fnv1a64(const std::string& bytes,
                      std::uint64_t seed = 1469598103934665603ULL) {
  return fnv1a64(bytes.data(), bytes.size(), seed);
}

std::string hex64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace

std::size_t sweep_shard_of(const std::string& cell_key, std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<std::size_t>(fnv1a64(cell_key) % shard_count);
}

ShardRef parse_shard_spec(const std::string& text) {
  const auto fail = [&text]() -> ShardRef {
    throw std::invalid_argument("--shard expects 'i/N' with 0 <= i < N, got '" +
                                text + "'");
  };
  const auto slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    return fail();
  }
  ShardRef shard;
  const char* begin = text.data();
  auto result = std::from_chars(begin, begin + slash, shard.index);
  if (result.ec != std::errc() || result.ptr != begin + slash) return fail();
  result = std::from_chars(begin + slash + 1, begin + text.size(), shard.count);
  if (result.ec != std::errc() || result.ptr != begin + text.size()) return fail();
  if (shard.count == 0 || shard.index >= shard.count) return fail();
  return shard;
}

std::string sweep_fingerprint(const SweepSpec& spec) {
  // Canonical serialization of the row-byte-determining spec fields.  Fields
  // are length-delimited by '\x1f' separators (never produced by
  // format_double or registry names) so adjacent values cannot alias.
  std::string canon = "hydra-sweep-v1";
  const auto put = [&canon](const std::string& field) {
    canon += '\x1f';
    canon += field;
  };
  for (const auto& scheme : spec.schemes) put("s=" + scheme);
  put("seed=" + std::to_string(spec.base_seed));
  put("reps=" + std::to_string(spec.replications));
  put("attempts=" + std::to_string(spec.max_attempts));
  put("budget=" + std::to_string(spec.optimal_budget));
  // The resolved backend name, so "" and an explicit "scp/barrier" agree —
  // they run the same arithmetic — while any other backend disagrees loudly.
  // Resolved against the registry DEFAULT, never the thread-local scope: the
  // fingerprint must stay a pure function of the spec.
  put("gp-backend=" +
      (spec.gp_backend.empty() ? std::string(gp::kDefaultGpBackend) : spec.gp_backend));
  // Same resolution rule for the runtime controller policy the adaptive
  // metrics simulate under.
  put("controller-policy=" + (spec.controller_policy.empty()
                                  ? std::string(sim::kDefaultControllerPolicy)
                                  : spec.controller_policy));
  // Name AND identity: two metric families sharing names but baked with
  // different parameters (trials, horizons, thresholds) yield different row
  // bytes, and only the identity string reveals that.
  for (const auto& metric : spec.metrics) {
    put("metric=" + metric.name + "#" + metric.identity);
  }
  for (const auto& point : spec.points) {
    put("point=" + point.label);
    if (point.instance.has_value()) {
      // The full task parameters, not just counts: editing one WCET between
      // shard runs must change the fingerprint, or the merge would silently
      // mix rows computed from different instances.
      put("preset-cores=" + std::to_string(point.instance->num_cores));
      for (const auto& task : point.instance->rt_tasks) {
        put("rt-task=" + task.name + "," + format_double(task.wcet) + "," +
            format_double(task.period) + "," + format_double(task.deadline));
      }
      for (const auto& task : point.instance->security_tasks) {
        put("sec-task=" + task.name + "," + format_double(task.wcet) + "," +
            format_double(task.period_des) + "," + format_double(task.period_max) +
            "," + format_double(task.weight));
      }
      continue;
    }
    if (!point.files.empty()) {
      // Path AND content: a workload file edited between shard runs yields
      // different rows for the same cell keys, which only the bytes reveal.
      // An unreadable file hashes as such — shards on a machine missing the
      // corpus then disagree loudly instead of merging garbage.
      for (const auto& file : point.files) {
        put("file=" + file);
        std::ifstream in(file, std::ios::binary);
        if (!in) {
          put("file-content=unreadable");
          continue;
        }
        std::uint64_t content_hash = 1469598103934665603ULL;
        char buffer[4096];
        while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
          content_hash =
              fnv1a64(buffer, static_cast<std::size_t>(in.gcount()), content_hash);
        }
        put("file-content=" + hex64(content_hash));
      }
      continue;
    }
    const auto& synth = point.synthetic;
    put("u=" + format_double(point.total_utilization));
    put("m=" + std::to_string(synth.num_cores));
    put("gen=" + std::to_string(static_cast<int>(synth.util_generator)));
    put("rt=" + std::to_string(synth.min_rt_per_core) + ".." +
        std::to_string(synth.max_rt_per_core));
    put("sec=" + std::to_string(synth.min_sec_per_core) + ".." +
        std::to_string(synth.max_sec_per_core));
    put("rtT=" + format_double(synth.rt_period_lo) + ".." +
        format_double(synth.rt_period_hi));
    put("secT=" + format_double(synth.sec_period_des_lo) + ".." +
        format_double(synth.sec_period_des_hi));
    put("tmaxf=" + format_double(synth.sec_period_max_factor));
    put("ratio=" + format_double(synth.sec_util_ratio));
    put("taskcap=" + format_double(synth.max_task_utilization));
  }
  return hex64(fnv1a64(canon));
}

std::string format_shard_header(const SweepShardHeader& header) {
  std::string out = "{\"hydra_sweep_shard\":{\"fingerprint\":\"" +
                    json_escape(header.fingerprint) +
                    "\",\"shard\":" + std::to_string(header.shard) +
                    ",\"shards\":" + std::to_string(header.shards) +
                    ",\"cells\":" + std::to_string(header.cells) + ",\"schemes\":[";
  bool first = true;
  for (const auto& scheme : header.schemes) {
    if (!first) out += ',';
    out += '"' + json_escape(scheme) + '"';
    first = false;
  }
  out += "]}}";
  return out;
}

namespace {

/// Mini-cursor for the strict shard-header grammar (exactly what
/// format_shard_header emits — we are the only producer, so any deviation
/// means "not a header").
struct HeaderCursor {
  const std::string& text;
  std::size_t pos = 0;

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text.compare(pos, len, word) != 0) return false;
    pos += len;
    return true;
  }
  bool quoted(std::string& out) {
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return false;
      const char esc = text[pos++];
      if (esc == '"' || esc == '\\') out += esc;
      else return false;  // json_escape never hits other escapes for our names
    }
    return false;
  }
  bool uint(std::size_t& out) {
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    const auto result = std::from_chars(begin, end, out);
    if (result.ec != std::errc()) return false;
    pos += static_cast<std::size_t>(result.ptr - begin);
    return true;
  }
};

}  // namespace

std::optional<SweepShardHeader> parse_shard_header(const std::string& line) {
  HeaderCursor cur{line};
  SweepShardHeader header;
  if (!cur.literal("{\"hydra_sweep_shard\":{\"fingerprint\":")) return std::nullopt;
  if (!cur.quoted(header.fingerprint)) return std::nullopt;
  if (!cur.literal(",\"shard\":") || !cur.uint(header.shard)) return std::nullopt;
  if (!cur.literal(",\"shards\":") || !cur.uint(header.shards)) return std::nullopt;
  if (!cur.literal(",\"cells\":") || !cur.uint(header.cells)) return std::nullopt;
  if (!cur.literal(",\"schemes\":[")) return std::nullopt;
  if (!cur.literal("]")) {
    do {
      std::string scheme;
      if (!cur.quoted(scheme)) return std::nullopt;
      header.schemes.push_back(std::move(scheme));
    } while (cur.literal(","));
    if (!cur.literal("]")) return std::nullopt;
  }
  if (!cur.literal("}}") || cur.pos != line.size()) return std::nullopt;
  if (header.shards == 0 || header.shard >= header.shards) return std::nullopt;
  return header;
}

std::optional<SweepShardHeader> read_shard_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  return parse_shard_header(line);
}

std::map<std::string, std::vector<BatchRow>> load_sweep_checkpoint(
    const std::string& path) {
  std::map<std::string, std::vector<BatchRow>> cells;
  std::ifstream in(path);
  if (!in) return cells;  // cold start
  std::string line;
  while (std::getline(in, line)) {
    auto row = parse_jsonl_row(line);
    // Unparseable lines (typically the truncated tail of a killed run) just
    // leave their cell incomplete — it is re-evaluated, not trusted.
    if (!row.has_value() || row->cell.empty()) continue;
    cells[row->cell].push_back(std::move(*row));
  }
  return cells;
}

namespace {

using SchemeSet = std::vector<std::unique_ptr<core::Allocator>>;

/// One (point, instance) unit of the flattened grid — the granularity of
/// work stealing and of resume.
struct SweepUnit {
  std::size_t point = 0;
  BatchItem item;
  const BatchSpec* point_spec = nullptr;       // synthetic/file source
  const core::Instance* preloaded = nullptr;   // preset-instance source
  std::string cell;
  double target_utilization = 0.0;
};

/// Stamps the sweep context onto freshly evaluated (or re-validated cached)
/// rows, so every emission path produces identical bytes.
void stamp_rows(std::vector<BatchRow>& rows, const SweepUnit& unit,
                const std::string& point_label) {
  for (auto& row : rows) {
    row.cell = unit.cell;
    row.point_index = unit.point;
    row.point_label = point_label;
    row.target_utilization = unit.target_utilization;
    row.instance_index = unit.item.index;
    row.instance_label = unit.item.label;
    row.seed = unit.item.seed;
  }
}

/// A checkpointed cell is only spliced in when it provably matches what the
/// current spec would compute: same scheme list in order, same per-instance
/// seed and label, and the full metric set on every validated row.  Anything
/// else (edited spec, different seed, added metric) silently falls back to
/// re-evaluation — resume must never resurrect stale results.
bool cached_cell_matches(const std::vector<BatchRow>& rows, const SweepUnit& unit,
                         const SweepSpec& spec) {
  if (rows.size() != spec.schemes.size()) return false;
  for (std::size_t j = 0; j < rows.size(); ++j) {
    const auto& row = rows[j];
    if (row.scheme != spec.schemes[j]) return false;
    if (row.seed != unit.item.seed || row.instance_label != unit.item.label) return false;
    if (row.instance_index != unit.item.index) return false;
    if (row.status == "ok" && row.feasible && row.validated) {
      if (row.metrics.size() != spec.metrics.size()) return false;
      for (std::size_t k = 0; k < spec.metrics.size(); ++k) {
        if (row.metrics[k].first != spec.metrics[k].name) return false;
      }
    } else if (!row.metrics.empty()) {
      return false;
    }
  }
  return true;
}

struct JoinGuard {
  std::vector<std::thread>& workers;
  ~JoinGuard() {
    for (auto& worker : workers) {
      if (worker.joinable()) worker.join();
    }
  }
};

}  // namespace

Sweep::Sweep(SweepSpec spec) : spec_(std::move(spec)) {
  if (spec_.schemes.empty()) {
    throw std::invalid_argument("sweep needs at least one scheme");
  }
  core::AllocatorRegistry::global().make_all(spec_.schemes);  // typo check
  if (!spec_.gp_backend.empty() &&
      !gp::SolverRegistry::global().contains(spec_.gp_backend)) {
    gp::SolverRegistry::global().make(spec_.gp_backend);  // throws, listing names
  }
  if (!spec_.controller_policy.empty()) {
    sim::ControllerRegistry::global().require(spec_.controller_policy);
  }
  if (spec_.points.empty()) {
    throw std::invalid_argument("sweep needs at least one point");
  }
  if (spec_.replications == 0) {
    throw std::invalid_argument("sweep needs at least one replication per point");
  }
  if (spec_.shard_count == 0) {
    throw std::invalid_argument("sweep shard_count must be at least 1");
  }
  if (spec_.shard_index >= spec_.shard_count) {
    throw std::invalid_argument(
        "sweep shard_index " + std::to_string(spec_.shard_index) +
        " out of range for shard_count " + std::to_string(spec_.shard_count));
  }
  // Fix the default labels now: cell keys (and hence resume identity) must
  // not depend on when a caller happens to read them.
  for (auto& point : spec_.points) {
    if (!point.label.empty()) continue;
    if (point.instance.has_value()) {
      point.label = "m=" + std::to_string(point.instance->num_cores) + " case-study";
    } else if (!point.files.empty()) {
      point.label = "files";
    } else {
      point.label = "m=" + std::to_string(point.synthetic.num_cores) +
                    " u=" + format_double(point.total_utilization);
    }
  }
  // Read the checkpoint now so callers can reuse the same path for the
  // (truncating) output sink they open between construction and run().
  if (!spec_.resume_path.empty()) {
    // A shard header in the checkpoint must describe THIS run: same spec
    // fingerprint and the same shard position.  (A merged or unsharded
    // checkpoint carries no header and is welcome for any shard — the cell
    // splice below simply uses the subset this shard owns.)
    if (const auto header = read_shard_header(spec_.resume_path)) {
      const std::string fingerprint = sweep_fingerprint(spec_);
      if (header->fingerprint != fingerprint) {
        throw std::runtime_error(
            "resume checkpoint " + spec_.resume_path +
            " was written by a different sweep spec (fingerprint " +
            header->fingerprint + ", this spec is " + fingerprint + ")");
      }
      if (header->shard != spec_.shard_index || header->shards != spec_.shard_count) {
        throw std::runtime_error(
            "resume checkpoint " + spec_.resume_path + " belongs to shard " +
            std::to_string(header->shard) + "/" + std::to_string(header->shards) +
            ", but this run is shard " + std::to_string(spec_.shard_index) + "/" +
            std::to_string(spec_.shard_count));
      }
    }
    checkpoint_ = load_sweep_checkpoint(spec_.resume_path);
    // A checkpoint whose cells do not even belong to this spec's grid is a
    // misconfiguration (wrong file, edited grid): fail loudly instead of
    // silently recomputing everything.
    if (!checkpoint_.empty()) {
      const auto keys = all_cell_keys();
      const std::set<std::string> valid(keys.begin(), keys.end());
      for (const auto& [cell, rows] : checkpoint_) {
        (void)rows;
        if (valid.count(cell) == 0) {
          throw std::runtime_error(
              "resume checkpoint " + spec_.resume_path + " contains cell '" +
              cell + "', which is outside this sweep's grid — refusing to "
              "resume from a checkpoint of a different spec");
        }
      }
    }
  }
}

std::vector<std::string> Sweep::all_cell_keys() const {
  // Mirrors run()'s unit expansion: one unit per preset instance, per corpus
  // file, or per synthetic replication, indexed exactly like enumerate().
  std::vector<std::string> keys;
  for (std::size_t p = 0; p < spec_.points.size(); ++p) {
    const auto& point = spec_.points[p];
    const std::size_t count = point.instance.has_value() ? 1
                              : !point.files.empty()     ? point.files.size()
                                                         : spec_.replications;
    for (std::size_t i = 0; i < count; ++i) {
      keys.push_back(sweep_cell_key(p, point.label, i));
    }
  }
  return keys;
}

SweepShardHeader Sweep::shard_header() const {
  SweepShardHeader header;
  header.fingerprint = sweep_fingerprint(spec_);
  header.shard = spec_.shard_index;
  header.shards = spec_.shard_count;
  header.schemes = spec_.schemes;
  for (const auto& key : all_cell_keys()) {
    if (sweep_shard_of(key, spec_.shard_count) == spec_.shard_index) ++header.cells;
  }
  return header;
}

SweepSummary Sweep::run(const std::vector<ResultSink*>& sinks) const {
  const auto started = std::chrono::steady_clock::now();

  // Expand the grid into per-point BatchSpecs and the flat unit list.
  std::vector<BatchSpec> point_specs(spec_.points.size());
  std::vector<SweepUnit> units;
  for (std::size_t p = 0; p < spec_.points.size(); ++p) {
    const auto& point = spec_.points[p];
    auto& point_spec = point_specs[p];
    point_spec.synthetic = point.synthetic;
    point_spec.total_utilization = point.total_utilization;
    point_spec.base_seed = sweep_point_seed(spec_.base_seed, p);
    point_spec.max_attempts = spec_.max_attempts;
    if (point.instance.has_value()) {
      SweepUnit unit;
      unit.point = p;
      unit.item.index = 0;
      unit.item.label = "instance";
      unit.preloaded = &*point.instance;
      unit.cell = sweep_cell_key(p, point.label, 0);
      units.push_back(std::move(unit));
      continue;
    }
    if (!point.files.empty()) {
      point_spec.files = point.files;
    } else {
      point_spec.count = spec_.replications;
    }
    for (auto& item : enumerate(point_spec)) {
      SweepUnit unit;
      unit.point = p;
      unit.cell = sweep_cell_key(p, point.label, item.index);
      unit.target_utilization = point.files.empty() ? point.total_utilization : 0.0;
      unit.item = std::move(item);
      unit.point_spec = &point_specs[p];
      units.push_back(std::move(unit));
    }
  }

  // Sharded run: keep only the units the cell-key partition assigns to this
  // shard.  Dropping units here — after keys are fixed, before any queue or
  // checkpoint work — is what keeps the surviving cells byte-identical to
  // their single-process counterparts.
  if (spec_.shard_count > 1) {
    std::vector<SweepUnit> mine;
    mine.reserve(units.size() / spec_.shard_count + 1);
    for (auto& unit : units) {
      if (sweep_shard_of(unit.cell, spec_.shard_count) == spec_.shard_index) {
        mine.push_back(std::move(unit));
      }
    }
    units = std::move(mine);
  }

  SweepSummary summary;
  summary.points = spec_.points.size();
  summary.cells = units.size();

  // Splice in checkpointed cells before any worker starts: resumed units are
  // pre-completed slots in the reorder buffer, not queue entries.
  std::vector<std::vector<BatchRow>> results(units.size());
  std::vector<char> done(units.size(), 0);
  for (std::size_t i = 0; i < units.size() && !checkpoint_.empty(); ++i) {
    const auto found = checkpoint_.find(units[i].cell);
    if (found == checkpoint_.end()) continue;
    if (!cached_cell_matches(found->second, units[i], spec_)) continue;
    results[i] = found->second;
    stamp_rows(results[i], units[i], spec_.points[units[i].point].label);
    done[i] = 1;
    ++summary.resumed_cells;
  }

  std::vector<std::size_t> pending;
  pending.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (!done[i]) pending.push_back(i);
  }

  for (auto* sink : sinks) sink->begin();
  const auto emit = [&](std::vector<BatchRow> rows) {
    for (auto& row : rows) {
      if (row.status == "ok") {
        ++summary.evaluated;
        if (row.feasible && row.validated) ++summary.feasible;
      } else if (row.status == "skipped") {
        ++summary.skipped;
      } else {
        ++summary.errors;
      }
      for (auto* sink : sinks) sink->row(row);
      summary.rows.push_back(std::move(row));
    }
  };

  // Warm-start neighbor of one unit: the nearest preceding synthetic point
  // with the same core count, read at the same instance index.  A pure
  // function of the spec — preset/file points neither seed nor get seeded.
  const auto warm_neighbor =
      [this, &point_specs](
          const SweepUnit& unit) -> std::optional<std::pair<const BatchSpec*, BatchItem>> {
    if (!spec_.scp_warm_start) return std::nullopt;
    const auto& point = spec_.points[unit.point];
    if (point.instance.has_value() || !point.files.empty()) return std::nullopt;
    for (std::size_t q = unit.point; q-- > 0;) {
      const auto& other = spec_.points[q];
      if (other.instance.has_value() || !other.files.empty()) continue;
      if (other.synthetic.num_cores != point.synthetic.num_cores) continue;
      BatchItem item;
      item.index = unit.item.index;
      item.seed = instance_seed(point_specs[q].base_seed, item.index);
      item.label = "seed=" + std::to_string(item.seed);
      return std::make_pair(&point_specs[q], std::move(item));
    }
    return std::nullopt;
  };

  const auto evaluate_unit = [this, &warm_neighbor](const SweepUnit& unit,
                                                    const SchemeSet& schemes) {
    static const BatchSpec kEmptySpec;
    // Pin every GP solve of this unit to the spec's backend ("" pins the
    // registry default).  Installed unconditionally so a stray outer scope
    // on a worker thread can never leak into row bytes.
    const gp::GpBackendScope backend_scope(spec_.gp_backend);
    // Likewise for the runtime controller policy the unit's adaptive metrics
    // resolve ("" pins the registry default).
    const sim::ControllerScope controller_scope(spec_.controller_policy);
    // Install the warm-start scope for the whole unit.  The neighbor's
    // canonical solve is paid lazily on the FIRST signomial solve of the
    // unit (memoized process-wide after that), so cells whose schemes never
    // reach the SCP path never pay for it.
    std::optional<core::ScpWarmStartScope> scope;
    if (const auto neighbor = warm_neighbor(unit)) {
      auto cache = std::make_shared<std::optional<std::vector<std::vector<double>>>>();
      core::ScpWarmStartHooks hooks;
      hooks.source = [cache, neighbor](std::size_t) {
        if (!cache->has_value()) {
          cache->emplace();
          if (auto warm = sweep_warm_periods(*neighbor->first, neighbor->second)) {
            (*cache)->push_back(std::move(*warm));
          }
        }
        return **cache;
      };
      scope.emplace(std::move(hooks));
    }
    auto rows = evaluate_batch_item(unit.point_spec ? *unit.point_spec : kEmptySpec,
                                    unit.item, unit.preloaded, schemes,
                                    spec_.optimal_budget, spec_.metrics);
    stamp_rows(rows, unit, spec_.points[unit.point].label);
    return rows;
  };

  std::size_t jobs = spec_.jobs;
  if (jobs == 0) jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  jobs = std::min(jobs, std::max<std::size_t>(1, pending.size()));

  if (jobs <= 1) {
    const auto schemes = core::AllocatorRegistry::global().make_all(spec_.schemes);
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (!done[i]) results[i] = evaluate_unit(units[i], schemes);
      emit(std::move(results[i]));
    }
  } else {
    // One queue across every point: `pending` is the work-stealing job list,
    // `results`/`done` the reorder buffer the coordinator drains in grid
    // order — no barrier between utilization points anywhere.
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable ready;

    std::vector<std::thread> workers;
    workers.reserve(jobs);
    JoinGuard join_guard{workers};
    for (std::size_t w = 0; w < jobs; ++w) {
      workers.emplace_back([&] {
        const auto schemes = core::AllocatorRegistry::global().make_all(spec_.schemes);
        for (std::size_t q = next.fetch_add(1); q < pending.size();
             q = next.fetch_add(1)) {
          const std::size_t i = pending[q];
          auto rows = evaluate_unit(units[i], schemes);
          {
            std::lock_guard<std::mutex> lock(mutex);
            results[i] = std::move(rows);
            done[i] = 1;
          }
          ready.notify_one();
        }
      });
    }

    for (std::size_t i = 0; i < units.size(); ++i) {
      std::unique_lock<std::mutex> lock(mutex);
      ready.wait(lock, [&] { return done[i] != 0; });
      auto rows = std::move(results[i]);
      lock.unlock();
      emit(std::move(rows));
    }
  }

  for (auto* sink : sinks) sink->end();
  summary.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - started)
                        .count();
  return summary;
}

}  // namespace hydra::exp
