#include "sim/mode_switch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <set>
#include <string>

#include "sim/attack.h"
#include "sim/busy_window.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace hydra::sim {

namespace {

constexpr util::SimTime kNever = std::numeric_limits<util::SimTime>::max();

/// A released-but-unfinished job on a core.  Unlike the fixed-rate engine the
/// relative deadline is per job: it is the period the controller chose at the
/// job's release boundary.
struct LiveJob {
  std::size_t task = 0;
  std::size_t job_index = 0;
  util::SimTime remaining = 0;
  util::SimTime deadline = 0;  ///< relative, mode-dependent
  util::SimTime release = 0;   ///< for detection delivery at completion
  bool started = false;
};

/// Per-task controller state on one core.
struct TaskMode {
  bool switchable = false;
  std::size_t level = 0;  ///< every task starts in minimum mode (level 0)
  std::size_t top = 0;    ///< fastest ladder index (num_levels - 1)
  util::SimTime dwell = 0;  ///< effective min_dwell for this task
  std::optional<util::SimTime> last_switch;
  std::size_t next_attack = 0;  ///< cursor into options.attack_times
};

void simulate_core(const std::vector<ModeTask>& tasks,
                   const std::vector<std::size_t>& members,
                   const ModeSwitchOptions& options,
                   const std::string& policy_name, util::SimTime window,
                   Trace& trace, ModeStats& stats, std::size_t core,
                   util::Xoshiro256 rng) {
  {
    std::set<int> prios;
    for (const std::size_t ti : members) {
      HYDRA_REQUIRE(prios.insert(tasks[ti].task.priority).second,
                    "duplicate priority on core " + std::to_string(core));
    }
  }
  const ModeControllerConfig& ctl = options.controller;
  const std::unique_ptr<ControllerPolicy> policy = ControllerRegistry::global().make(
      policy_name, ctl, PolicyInit{tasks.size(), window});

  std::vector<util::SimTime> next_release(tasks.size(), kNever);
  std::vector<TaskMode> mode(tasks.size());
  for (const std::size_t ti : members) {
    const ModeTask& mt = tasks[ti];
    if (mt.task.release_offset < options.horizon) {
      next_release[ti] = mt.task.release_offset;
    }
    mode[ti].switchable = mt.switchable();
    mode[ti].top = mt.num_levels() - 1;
    mode[ti].dwell = ctl.min_dwell > 0 ? ctl.min_dwell : mt.task.period;
  }

  std::vector<LiveJob> ready;
  const util::SimTime hard_stop = options.horizon + options.grace;
  util::SimTime now = 0;
  util::SimTime busy = 0;
  // A non-preemptive job delays release admission (and hence controller
  // decisions) by up to its WCET past the clock; widen the retention guard so
  // those late decisions still see their full window.
  util::SimTime admission_lag = 0;
  for (const std::size_t ti : members) {
    if (!tasks[ti].task.preemptive) {
      admission_lag = std::max(admission_lag, tasks[ti].task.wcet);
    }
  }
  BusyWindow history(window + admission_lag);
  std::optional<std::size_t> locked;  // started non-preemptive job, if any

  const auto earliest_release = [&]() {
    util::SimTime t = kNever;
    for (const std::size_t ti : members) t = std::min(t, next_release[ti]);
    return t;
  };

  const auto draw_exec = [&](const SimTask& task) -> util::SimTime {
    if (task.exec_fraction_min >= 1.0) return task.wcet;
    const double fraction = rng.uniform(task.exec_fraction_min, 1.0);
    const double ticks = std::ceil(fraction * static_cast<double>(task.wcet));
    return std::max<util::SimTime>(1, static_cast<util::SimTime>(ticks));
  };

  // The controller decision at task ti's release boundary `at`: the policy's
  // desired level — a pure function of the core-local busy history, ti's own
  // mode state, and delivered detection events — filtered through the dwell /
  // budget machinery.  Denials are counted, never silent.
  const auto decide_mode = [&](std::size_t ti, util::SimTime at) {
    TaskMode& m = mode[ti];
    if (!m.switchable) return;
    const util::SimTime span = std::min(at, window);
    if (span == 0) return;  // no observed history yet: stay conservative
    const util::SimTime busy_ticks = history.busy_in(at - span, at);
    const double idle_fraction =
        static_cast<double>(span - busy_ticks) / static_cast<double>(span);
    const std::size_t want =
        policy->decide(ti, LevelObservation{at, idle_fraction, m.level, m.top});
    HYDRA_REQUIRE(want <= m.top,
                  "policy '" + policy->name() + "' asked for level " +
                      std::to_string(want) + " above the analysis-feasible "
                      "fastest level " + std::to_string(m.top) + " of task '" +
                      tasks[ti].task.name + "'");
    if (want == m.level) return;
    if (stats.switches[ti] >= ctl.switch_budget) {
      ++stats.denied_budget[ti];
      return;
    }
    if (m.last_switch.has_value() && at - *m.last_switch < m.dwell) {
      ++stats.denied_dwell[ti];
      return;
    }
    stats.events.push_back(ModeSwitchEvent{ti, at, want > m.level, m.level, want});
    m.level = want;
    m.last_switch = at;
    ++stats.switches[ti];
  };

  // Detection delivery at job completion: the completed job is the first
  // fresh scan for every not-yet-delivered attack that precedes its release
  // (sim/attack.h semantics).  No RNG is touched, so policies that ignore
  // detections keep a byte-identical trace.
  const auto deliver_detections = [&](std::size_t ti, util::SimTime release,
                                      util::SimTime completion) {
    TaskMode& m = mode[ti];
    if (!m.switchable) return;
    while (m.next_attack < options.attack_times.size() &&
           options.attack_times[m.next_attack] < release) {
      policy->on_detection(ti, completion);
      ++stats.detections[ti];
      ++m.next_attack;
    }
  };

  // Admits due releases strictly in release-time order (ties by member
  // order), not per-task batches — a non-preemptive job can delay admission
  // past several tasks' releases at once, and the switch-event stream is
  // documented time-ascending per core.
  const auto admit_releases = [&](util::SimTime up_to) {
    while (true) {
      std::optional<std::size_t> next;
      for (const std::size_t ti : members) {
        if (next_release[ti] <= up_to &&
            (!next.has_value() || next_release[ti] < next_release[*next])) {
          next = ti;
        }
      }
      if (!next.has_value()) break;
      {
        const std::size_t ti = *next;
        const ModeTask& mt = tasks[ti];
        const util::SimTime at = next_release[ti];
        decide_mode(ti, at);
        const std::size_t level = mode[ti].level;
        const util::SimTime period = mt.level_period(level);
        // Implicit-deadline monitors track their current rate; fixed tasks
        // keep their configured deadline.
        const util::SimTime deadline = mode[ti].switchable ? period : mt.task.deadline;
        if (level > 0) {
          stats.adapted_residency[ti] += period;
          ++stats.adapted_jobs[ti];
        } else {
          stats.min_residency[ti] += period;
          ++stats.min_jobs[ti];
        }
        JobRecord rec;
        rec.release = at;
        trace.jobs[ti].push_back(rec);
        ready.push_back(LiveJob{ti, trace.jobs[ti].size() - 1, draw_exec(mt.task),
                                deadline, at, false});
        util::SimTime gap = period;
        if (mt.task.release_jitter > 0) {
          gap += rng.uniform_int(1, mt.task.release_jitter);
        }
        const util::SimTime nxt = at + gap;
        next_release[ti] = (nxt < options.horizon) ? nxt : kNever;
      }
    }
  };

  const auto pick = [&]() -> std::optional<std::size_t> {
    if (locked.has_value()) return locked;
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (!best.has_value() ||
          tasks[ready[i].task].task.priority < tasks[ready[*best].task].task.priority) {
        best = i;
      }
    }
    return best;
  };

  while (now < hard_stop) {
    admit_releases(now);
    const auto chosen = pick();
    if (!chosen.has_value()) {
      const util::SimTime nxt = earliest_release();
      if (nxt == kNever) break;
      now = nxt;
      continue;
    }

    LiveJob& job = ready[*chosen];
    const SimTask& task = tasks[job.task].task;
    JobRecord& rec = trace.jobs[job.task][job.job_index];
    if (!job.started) {
      rec.start = now;
      job.started = true;
      if (!task.preemptive) locked = *chosen;
    }

    const util::SimTime completion_at = now + job.remaining;
    util::SimTime run_until = completion_at;
    if (task.preemptive) run_until = std::min(run_until, earliest_release());
    run_until = std::min(run_until, hard_stop);

    if (options.record_segments && run_until > now) {
      if (!trace.segments.empty() && trace.segments.back().core == core &&
          trace.segments.back().task == job.task && trace.segments.back().to == now) {
        trace.segments.back().to = run_until;
      } else {
        trace.segments.push_back(ExecutionSegment{job.task, core, now, run_until});
      }
    }
    history.add(now, run_until);
    busy += run_until - now;
    job.remaining -= run_until - now;
    now = run_until;

    if (job.remaining == 0) {
      rec.completed = true;
      rec.completion = now;
      rec.deadline_missed = now > rec.release + job.deadline;
      deliver_detections(job.task, job.release, now);
      if (locked.has_value() && *locked == *chosen) locked = std::nullopt;
      const std::size_t last = ready.size() - 1;
      if (*chosen != last) {
        ready[*chosen] = ready[last];
        if (locked.has_value() && *locked == last) locked = *chosen;
      }
      ready.pop_back();
    }
  }

  for (const LiveJob& job : ready) {
    trace.jobs[job.task][job.job_index].deadline_missed = true;
  }
  trace.core_busy[core] = busy;
}

std::size_t sum(const std::vector<std::size_t>& v) {
  std::size_t n = 0;
  for (const auto x : v) n += x;
  return n;
}

}  // namespace

double ModeStats::adapted_fraction(std::size_t task) const {
  HYDRA_REQUIRE(task < adapted_residency.size(), "task index out of range");
  const util::SimTime total = min_residency[task] + adapted_residency[task];
  if (total == 0) return 0.0;
  return static_cast<double>(adapted_residency[task]) / static_cast<double>(total);
}

double ModeStats::mean_adapted_fraction(const std::vector<std::size_t>& only) const {
  if (only.empty()) return 0.0;
  double sum = 0.0;
  for (const std::size_t task : only) sum += adapted_fraction(task);
  return sum / static_cast<double>(only.size());
}

std::size_t ModeStats::total_switches() const { return sum(switches); }
std::size_t ModeStats::total_denied_dwell() const { return sum(denied_dwell); }
std::size_t ModeStats::total_denied_budget() const { return sum(denied_budget); }
std::size_t ModeStats::total_detections() const { return sum(detections); }

ModeSwitchResult simulate_mode_switching(const std::vector<ModeTask>& tasks,
                                         const ModeSwitchOptions& options) {
  HYDRA_REQUIRE(options.horizon > 0, "simulation horizon must be positive");
  options.controller.validate();
  const std::string policy_name =
      resolve_controller_policy(options.controller.policy);
  ControllerRegistry::global().require(policy_name);
  for (std::size_t i = 1; i < options.attack_times.size(); ++i) {
    HYDRA_REQUIRE(options.attack_times[i - 1] <= options.attack_times[i],
                  "attack_times must be ascending");
  }
  std::size_t num_cores = 0;
  for (const auto& mt : tasks) {
    const SimTask& t = mt.task;
    HYDRA_REQUIRE(t.wcet > 0 && t.period > 0 && t.deadline > 0,
                  "task '" + t.name + "' needs positive WCET/period/deadline");
    HYDRA_REQUIRE(t.wcet <= t.deadline, "task '" + t.name + "' has WCET > deadline");
    if (mt.adapted_period > 0) {
      HYDRA_REQUIRE(mt.adapted_period >= t.wcet,
                    "task '" + t.name + "' has adapted period below its WCET");
      HYDRA_REQUIRE(mt.adapted_period <= t.period,
                    "task '" + t.name + "' has adapted period above minimum mode");
    }
    if (mt.switchable()) {
      util::SimTime prev = t.period;
      for (const util::SimTime level : mt.levels) {
        HYDRA_REQUIRE(level < prev && level > mt.adapted_period,
                      "task '" + t.name + "' has a mode level outside the "
                      "strictly decreasing (adapted, minimum) ladder");
        prev = level;
      }
    }
    num_cores = std::max(num_cores, t.core + 1);
  }

  ModeSwitchOptions effective = options;
  if (effective.grace == 0) {
    util::SimTime max_deadline = 0;
    for (const auto& mt : tasks) max_deadline = std::max(max_deadline, mt.task.deadline);
    effective.grace = max_deadline;
  }

  ModeSwitchResult result;
  result.trace.horizon = options.horizon;
  result.trace.jobs.assign(tasks.size(), {});
  result.trace.core_busy.assign(num_cores, 0);
  result.stats.switches.assign(tasks.size(), 0);
  result.stats.min_residency.assign(tasks.size(), 0);
  result.stats.adapted_residency.assign(tasks.size(), 0);
  result.stats.min_jobs.assign(tasks.size(), 0);
  result.stats.adapted_jobs.assign(tasks.size(), 0);
  result.stats.denied_dwell.assign(tasks.size(), 0);
  result.stats.denied_budget.assign(tasks.size(), 0);
  result.stats.detections.assign(tasks.size(), 0);

  util::Xoshiro256 root_rng(options.seed);
  for (std::size_t core = 0; core < num_cores; ++core) {
    // Independent per-core streams, forked in core order — identical protocol
    // to sim::simulate, so one core's draws never shift another's schedule.
    util::Xoshiro256 core_rng = root_rng.fork();
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (tasks[i].task.core == core) members.push_back(i);
    }
    if (members.empty()) continue;
    util::SimTime window = effective.controller.slack_window;
    if (window == 0) {
      // Auto: long enough that one minimum-mode hyperperiod of the slowest
      // switchable monitor fits four times over.
      for (const std::size_t ti : members) {
        if (tasks[ti].switchable()) window = std::max(window, 4 * tasks[ti].task.period);
      }
      if (window == 0) window = 1;  // no switchable task: value is irrelevant
    }
    simulate_core(tasks, members, effective, policy_name, window, result.trace,
                  result.stats, core, std::move(core_rng));
  }
  return result;
}

std::vector<ModeTask> build_mode_tasks(const core::Instance& instance,
                                       const core::Allocation& allocation,
                                       const core::ModeTable& table) {
  HYDRA_REQUIRE(table.modes.size() == instance.security_tasks.size(),
                "mode table does not cover the security task set");
  const std::vector<SimTask> base = build_sim_tasks(instance, allocation);
  std::vector<ModeTask> tasks;
  tasks.reserve(base.size());
  const std::size_t nr = instance.rt_tasks.size();
  for (std::size_t i = 0; i < base.size(); ++i) {
    ModeTask mt;
    mt.task = base[i];
    if (i >= nr) {
      const std::size_t s = i - nr;
      const core::SecurityMode& m = table.modes[s];
      // Minimum mode: round Tmax up to a whole tick (a longer period only
      // reduces demand — same convention as build_sim_tasks).
      mt.task.period =
          std::max<util::SimTime>(util::to_ticks_ceil(m.min_period), mt.task.wcet);
      mt.task.deadline = mt.task.period;
      if (table.has_headroom(s)) {
        mt.adapted_period =
            std::max<util::SimTime>(util::to_ticks_ceil(m.adapted_period), mt.task.wcet);
        // Tick rounding can collapse the headroom; a collapsed pair is fixed.
        if (mt.adapted_period >= mt.task.period) mt.adapted_period = 0;
      }
      if (mt.adapted_period > 0 && m.levels.size() > 2) {
        // Intermediate rungs, rounded to ticks; rounding can collapse a rung
        // into a neighbour — drop it so the ladder stays strictly decreasing.
        util::SimTime prev = mt.task.period;
        for (std::size_t k = 1; k + 1 < m.levels.size(); ++k) {
          const util::SimTime tick = std::max<util::SimTime>(
              util::to_ticks_ceil(m.levels[k]), mt.task.wcet);
          if (tick < prev && tick > mt.adapted_period) {
            mt.levels.push_back(tick);
            prev = tick;
          }
        }
      }
    }
    tasks.push_back(std::move(mt));
  }
  return tasks;
}

}  // namespace hydra::sim
