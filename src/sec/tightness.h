// The paper's security quality metric (Eq. 2): tightness ηs = Tdes_s / Ts,
// bounded by Tdes/Tmax ≤ ηs ≤ 1, and the weighted cumulative tightness the
// allocators maximize (Eq. 3).
#pragma once

#include <vector>

#include "rt/task.h"
#include "util/units.h"

namespace hydra::sec {

/// ηs for one task at an assigned period.  Requires period ∈ [Tdes, Tmax]
/// (within tolerance); callers should clamp/validate before reporting.
double tightness(const rt::SecurityTask& task, util::Millis period);

/// Σs ωs·ηs over parallel arrays of tasks and assigned periods.
double cumulative_tightness(const std::vector<rt::SecurityTask>& tasks,
                            const std::vector<util::Millis>& periods);

/// Upper bound of Eq. (3): every task at its desired period (η = 1).
double max_cumulative_tightness(const std::vector<rt::SecurityTask>& tasks);

/// Lower bound: every task at Tmax.
double min_cumulative_tightness(const std::vector<rt::SecurityTask>& tasks);

}  // namespace hydra::sec
