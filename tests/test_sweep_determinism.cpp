// Determinism and resume tests for the sweep layer:
//   * --jobs 1 and --jobs 8 produce byte-identical row and aggregate JSONL;
//   * resuming from a truncated checkpoint (a run killed mid-write)
//     reproduces the uninterrupted output byte for byte;
//   * a checkpoint from a different spec is rejected, never spliced — and a
//     checkpoint that provably belongs to a DIFFERENT grid (cell keys
//     outside the spec, or a shard header with a foreign fingerprint/shard
//     position) throws instead of silently recomputing;
//   * JSONL rows round-trip exactly through parse_jsonl_row.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/aggregate.h"
#include "exp/sweep.h"
#include "gp/solver_registry.h"

namespace hexp = hydra::exp;

namespace {

/// A small but non-trivial grid: 3 utilization points × 4 instances ×
/// 3 schemes (including the exhaustive optimal, whose uneven per-cell cost
/// is what would expose ordering races under work stealing).
hexp::SweepSpec small_grid() {
  hexp::SweepSpec spec;
  spec.schemes = {"hydra", "single-core", "optimal"};
  hydra::gen::SyntheticConfig config;
  config.num_cores = 2;
  config.min_sec_per_core = 1;
  config.max_sec_per_core = 2;
  spec.add_utilization_grid(config, {0.8, 1.4, 1.9});
  spec.replications = 4;
  spec.base_seed = 77;
  return spec;
}

std::string run_rows(hexp::SweepSpec spec) {
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  hexp::Sweep(std::move(spec)).run({&sink});
  return os.str();
}

std::string run_aggregate(hexp::SweepSpec spec) {
  hexp::Aggregator aggregator;
  hexp::Sweep(std::move(spec)).run({&aggregator});
  std::ostringstream os;
  aggregator.write_jsonl(os);
  return os.str();
}

/// RAII temp file holding a (possibly truncated) checkpoint.
struct TempCheckpoint {
  std::string path;
  explicit TempCheckpoint(const std::string& content)
      : path(::testing::TempDir() + "hydra_sweep_checkpoint.jsonl") {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content;
  }
  ~TempCheckpoint() { std::remove(path.c_str()); }
};

}  // namespace

TEST(SweepDeterminism, RowsAreByteIdenticalAcrossJobCounts) {
  auto serial = small_grid();
  serial.jobs = 1;
  auto parallel = small_grid();
  parallel.jobs = 8;
  const auto rows1 = run_rows(serial);
  const auto rows8 = run_rows(parallel);
  EXPECT_FALSE(rows1.empty());
  EXPECT_EQ(rows1, rows8);
}

TEST(SweepDeterminism, AggregatesAreByteIdenticalAcrossJobCounts) {
  auto serial = small_grid();
  serial.jobs = 1;
  auto parallel = small_grid();
  parallel.jobs = 8;
  const auto agg1 = run_aggregate(serial);
  const auto agg8 = run_aggregate(parallel);
  EXPECT_FALSE(agg1.empty());
  EXPECT_EQ(agg1, agg8);
}

TEST(SweepDeterminism, WarmStartsDoNotChangeRowBytes) {
  // The SCP warm-start accelerator must be output-invisible: the grid above
  // includes the `optimal` scheme (which solves kSignomialScp per assignment
  // code), and the warm-vs-cold tie rule has to keep every row byte-identical
  // whether the accelerator is on, off, or racing across 8 workers.
  auto cold = small_grid();
  cold.scp_warm_start = false;
  auto warm = small_grid();
  warm.scp_warm_start = true;
  warm.jobs = 1;
  auto warm_parallel = small_grid();
  warm_parallel.scp_warm_start = true;
  warm_parallel.jobs = 8;

  const auto rows_cold = run_rows(cold);
  const auto rows_warm = run_rows(warm);
  const auto rows_warm8 = run_rows(warm_parallel);
  EXPECT_FALSE(rows_cold.empty());
  EXPECT_EQ(rows_cold, rows_warm);
  EXPECT_EQ(rows_warm, rows_warm8);
}

TEST(SweepDeterminism, WarmStartFlagDoesNotChangeFingerprint) {
  // scp_warm_start is solver plumbing, not a row-byte input: toggling it must
  // not invalidate checkpoints or shard merges.
  auto on = small_grid();
  on.scp_warm_start = true;
  auto off = small_grid();
  off.scp_warm_start = false;
  EXPECT_EQ(hexp::sweep_fingerprint(on), hexp::sweep_fingerprint(off));
}

TEST(SweepDeterminism, GpBackendIsARowByteInput) {
  // The GP backend changes the numbers a sweep can produce, so it IS part of
  // the fingerprint — unlike scp_warm_start/jobs above, which are plumbing.
  // The empty spelling and the explicit default name are the same
  // configuration and must collide (the fingerprint stamps the resolved
  // name), so upgrading old specs to name the backend never orphans
  // checkpoints.
  const auto fp_default = hexp::sweep_fingerprint(small_grid());
  auto named = small_grid();
  named.gp_backend = hydra::gp::kDefaultGpBackend;
  EXPECT_EQ(hexp::sweep_fingerprint(named), fp_default);

  auto ipm = small_grid();
  ipm.gp_backend = "ipm/filter";
  EXPECT_NE(hexp::sweep_fingerprint(ipm), fp_default);

  auto best = small_grid();
  best.gp_backend = "pick-best";
  EXPECT_NE(hexp::sweep_fingerprint(best), fp_default);
  EXPECT_NE(hexp::sweep_fingerprint(best), hexp::sweep_fingerprint(ipm));
}

TEST(SweepDeterminism, UnknownGpBackendIsRejectedAtConstruction) {
  // Typos fail fast with the catalog in the message, not mid-sweep.
  auto spec = small_grid();
  spec.gp_backend = "no-such-backend";
  try {
    const hexp::Sweep sweep(std::move(spec));
    FAIL() << "unknown gp_backend accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-backend"), std::string::npos);
  }
}

TEST(SweepDeterminism, RowsRoundTripThroughParser) {
  const auto rows = run_rows(small_grid());
  std::ostringstream reserialized;
  hexp::JsonlSink sink(reserialized);
  std::istringstream in(rows);
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(in, line)) {
    const auto row = hexp::parse_jsonl_row(line);
    ASSERT_TRUE(row.has_value()) << line;
    sink.row(*row);
    ++parsed;
  }
  EXPECT_GT(parsed, 0u);
  EXPECT_EQ(reserialized.str(), rows);
}

TEST(SweepResume, TruncatedCheckpointReproducesUninterruptedRunExactly) {
  const auto full = run_rows(small_grid());
  ASSERT_FALSE(full.empty());

  // Simulate a run killed mid-write: keep roughly 40% of the stream and cut
  // in the MIDDLE of the next line — the torn line must be discarded, its
  // cell re-evaluated.
  const std::size_t cut = full.find('\n', full.size() * 2 / 5);
  ASSERT_NE(cut, std::string::npos);
  const std::string truncated = full.substr(0, cut + 1 + 25);
  const TempCheckpoint checkpoint(truncated);

  auto resumed_spec = small_grid();
  resumed_spec.jobs = 4;
  resumed_spec.resume_path = checkpoint.path;
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  const auto summary = hexp::Sweep(std::move(resumed_spec)).run({&sink});

  EXPECT_GT(summary.resumed_cells, 0u);
  EXPECT_LT(summary.resumed_cells, summary.cells);
  EXPECT_EQ(os.str(), full);
}

TEST(SweepResume, CompleteCheckpointSkipsEveryCell) {
  const auto full = run_rows(small_grid());
  const TempCheckpoint checkpoint(full);

  auto resumed_spec = small_grid();
  resumed_spec.resume_path = checkpoint.path;
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  const auto summary = hexp::Sweep(std::move(resumed_spec)).run({&sink});
  EXPECT_EQ(summary.resumed_cells, summary.cells);
  EXPECT_EQ(os.str(), full);
}

TEST(SweepResume, CheckpointFromDifferentSeedIsRejected) {
  const auto full = run_rows(small_grid());
  const TempCheckpoint checkpoint(full);

  auto other = small_grid();
  other.base_seed = 78;  // different instances ⇒ every cached cell is stale
  other.resume_path = checkpoint.path;
  const auto summary = hexp::Sweep(std::move(other)).run();
  EXPECT_EQ(summary.resumed_cells, 0u);
}

TEST(SweepResume, CheckpointWithFewerSchemesIsRejected) {
  auto partial_spec = small_grid();
  partial_spec.schemes = {"hydra", "single-core"};  // no optimal rows
  const auto partial = run_rows(partial_spec);
  const TempCheckpoint checkpoint(partial);

  auto resumed_spec = small_grid();  // wants hydra, single-core AND optimal
  resumed_spec.resume_path = checkpoint.path;
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  const auto summary = hexp::Sweep(std::move(resumed_spec)).run({&sink});
  EXPECT_EQ(summary.resumed_cells, 0u);
  EXPECT_EQ(os.str(), run_rows(small_grid()));
}

TEST(SweepResume, MissingCheckpointIsAColdStart) {
  auto spec = small_grid();
  spec.resume_path = ::testing::TempDir() + "does_not_exist_hydra.jsonl";
  const auto summary = hexp::Sweep(std::move(spec)).run();
  EXPECT_EQ(summary.resumed_cells, 0u);
  EXPECT_EQ(summary.cells, 12u);  // 3 points × 4 replications
}

TEST(SweepResume, ForeignCellKeysAreALoudErrorNotASilentRecompute) {
  // Regression: a checkpoint whose cells are not even part of this spec's
  // grid means the caller resumed the wrong file (or edited the grid).  That
  // used to fall through to "0 cells resumed, recompute everything" —
  // indistinguishable from a cold start.  It must throw, naming the key.
  auto full = run_rows(small_grid());
  const auto at = full.find("\"cell\":\"p0:");
  ASSERT_NE(at, std::string::npos);
  full.replace(at, std::string("\"cell\":\"p0:").size(), "\"cell\":\"p9:");
  const TempCheckpoint checkpoint(full);

  auto spec = small_grid();
  spec.resume_path = checkpoint.path;
  try {
    hexp::Sweep sweep(std::move(spec));
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("p9:"), std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("outside"), std::string::npos);
  }
}

TEST(SweepResume, ShardHeaderFromDifferentSpecIsRejected) {
  // The shard header pins the spec fingerprint; resuming a checkpoint whose
  // header disagrees (here: a different base seed) must throw up front.
  auto other = small_grid();
  other.base_seed = 123;
  other.shard_count = 2;
  const auto foreign_header =
      hexp::format_shard_header(hexp::Sweep(std::move(other)).shard_header());
  const TempCheckpoint checkpoint(foreign_header + "\n");

  auto spec = small_grid();
  spec.shard_count = 2;
  spec.resume_path = checkpoint.path;
  try {
    hexp::Sweep sweep(std::move(spec));
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("fingerprint"), std::string::npos)
        << error.what();
  }
}

TEST(SweepResume, ShardHeaderFromWrongShardPositionIsRejected) {
  // Same sweep, wrong shard: shard 1's checkpoint must not seed shard 0 (its
  // cells would all be foreign) nor an unsharded run pretending to be whole.
  auto shard1 = small_grid();
  shard1.shard_index = 1;
  shard1.shard_count = 2;
  const auto header =
      hexp::format_shard_header(hexp::Sweep(std::move(shard1)).shard_header());
  const TempCheckpoint checkpoint(header + "\n");

  auto shard0 = small_grid();
  shard0.shard_count = 2;  // shard 0 of 2
  shard0.resume_path = checkpoint.path;
  try {
    hexp::Sweep sweep(std::move(shard0));
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("shard"), std::string::npos)
        << error.what();
  }

  auto unsharded = small_grid();
  unsharded.resume_path = checkpoint.path;
  EXPECT_THROW(hexp::Sweep(std::move(unsharded)), std::runtime_error);
}

TEST(SweepResume, OwnShardCheckpointStillResumesExactly) {
  // The happy sharded path: a shard writes header + rows, dies, and its own
  // resume reproduces the uninterrupted shard output byte for byte.
  auto spec = small_grid();
  spec.shard_index = 1;
  spec.shard_count = 2;
  const hexp::Sweep sweep(spec);
  const auto header_line = hexp::format_shard_header(sweep.shard_header());
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  sweep.run({&sink});
  const auto full = os.str();
  ASSERT_FALSE(full.empty());

  // Keep the first complete cell: one row per scheme, emitted contiguously.
  std::size_t cut = std::string::npos;
  for (std::size_t line = 0, pos = 0; line < 3; ++line) {
    cut = full.find('\n', pos);
    ASSERT_NE(cut, std::string::npos);
    pos = cut + 1;
  }
  const TempCheckpoint checkpoint(header_line + "\n" + full.substr(0, cut + 1));

  auto resumed_spec = spec;
  resumed_spec.resume_path = checkpoint.path;
  std::ostringstream resumed;
  hexp::JsonlSink resumed_sink(resumed);
  const auto summary = hexp::Sweep(std::move(resumed_spec)).run({&resumed_sink});
  EXPECT_GT(summary.resumed_cells, 0u);
  EXPECT_EQ(resumed.str(), full);
}
