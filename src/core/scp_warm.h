// Warm-start seam for the signomial-SCP joint period solves.
//
// optimize_joint_periods' kSignomialScp branch consults the innermost
// ScpWarmStartScope installed on the current thread: `source` supplies extra
// start points (for example a neighboring sweep cell's converged period
// vector) that are ADDED to the cold start set via
// gp::maximize_posynomial_scp_warm — never replacing it — and `sink`
// observes each adopted feasible SCP period vector.  Combined with the
// warm-adoption tie rule documented in gp/scp.h (a warm-derived result wins
// only when it beats the cold best by more than rel_tol), installing or
// removing a scope cannot perturb results through last-ulp objective noise:
// output is byte-identical with the seam active or not unless a warm start
// finds a materially better KKT point.
//
// Scopes are thread-local and nest innermost-wins.  Installing a scope with
// default-constructed (empty) hooks shadows any outer scope, which is how
// the sweep-layer memo (exp/scp_warm.h) runs its own canonical solves cold
// without re-entering itself.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace hydra::core {

struct ScpWarmStartHooks {
  /// Extra start points for a joint solve over `num_periods` period
  /// variables.  Vectors of the wrong size or with non-positive entries are
  /// skipped by the gp layer, so a source may return candidates without
  /// checking them against the solve at hand.  Called once per
  /// kSignomialScp solve.
  std::function<std::vector<std::vector<double>>(std::size_t num_periods)> source;

  /// Observes the adopted feasible SCP iterate of each kSignomialScp solve
  /// (the raw solver point, before clamping into [Tdes, Tmax]).
  std::function<void(const std::vector<double>& periods)> sink;
};

/// RAII installation of warm-start hooks for the current thread.
class ScpWarmStartScope {
 public:
  explicit ScpWarmStartScope(ScpWarmStartHooks hooks);
  ~ScpWarmStartScope();
  ScpWarmStartScope(const ScpWarmStartScope&) = delete;
  ScpWarmStartScope& operator=(const ScpWarmStartScope&) = delete;

  /// The innermost scope's hooks on this thread, or nullptr when none.
  static const ScpWarmStartHooks* current();

 private:
  ScpWarmStartHooks hooks_;
  const ScpWarmStartHooks* previous_;
};

}  // namespace hydra::core
