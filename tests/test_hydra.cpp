// Tests for Algorithm 1 (HYDRA): line-by-line behaviours, invariants,
// independent re-validation, and option ablations.
#include <gtest/gtest.h>

#include <set>

#include "core/hydra.h"
#include "core/validation.h"
#include "gen/uav.h"
#include "rt/priority.h"
#include "sec/catalog.h"
#include "util/rng.h"

namespace core = hydra::core;
namespace rt = hydra::rt;

namespace {

core::Instance small_instance() {
  core::Instance inst;
  inst.num_cores = 2;
  inst.rt_tasks = {rt::make_rt_task("r0", 2.0, 10.0), rt::make_rt_task("r1", 5.0, 20.0)};
  inst.security_tasks = {rt::make_security_task("s0", 10.0, 200.0, 2000.0),
                         rt::make_security_task("s1", 20.0, 300.0, 3000.0)};
  return inst;
}

}  // namespace

TEST(Hydra, FeasibleOnLightLoad) {
  const auto allocation = core::HydraAllocator().allocate(small_instance());
  ASSERT_TRUE(allocation.feasible) << allocation.failure_reason;
  const auto report = core::validate_allocation(small_instance(), allocation);
  EXPECT_TRUE(report.valid) << report.problem;
}

TEST(Hydra, IdlePlatformGivesPerfectTightness) {
  core::Instance inst;
  inst.num_cores = 4;
  inst.rt_tasks = {rt::make_rt_task("tiny", 0.1, 1000.0)};
  inst.security_tasks = {rt::make_security_task("s0", 5.0, 100.0, 1000.0),
                         rt::make_security_task("s1", 5.0, 150.0, 1500.0)};
  const auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  for (const auto& p : allocation.placements) EXPECT_DOUBLE_EQ(p.tightness, 1.0);
}

TEST(Hydra, SpreadsTasksWhenTightnessTies) {
  // Idle cores everywhere → all η = 1; default tie-break spreads the load.
  core::Instance inst;
  inst.num_cores = 3;
  inst.security_tasks = {rt::make_security_task("s0", 50.0, 100.0, 1000.0),
                         rt::make_security_task("s1", 50.0, 110.0, 1100.0),
                         rt::make_security_task("s2", 50.0, 120.0, 1200.0)};
  const auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  std::set<std::size_t> cores_used;
  for (const auto& p : allocation.placements) cores_used.insert(p.core);
  EXPECT_EQ(cores_used.size(), 3u);
}

TEST(Hydra, LowestIndexTieBreakPilesOnCoreZero) {
  core::Instance inst;
  inst.num_cores = 3;
  inst.security_tasks = {rt::make_security_task("s0", 1.0, 1000.0, 10000.0),
                         rt::make_security_task("s1", 1.0, 1100.0, 11000.0)};
  core::HydraOptions opts;
  opts.tie_break = core::TieBreak::kLowestIndex;
  const auto allocation = core::HydraAllocator(opts).allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  // Tiny tasks keep η = 1 on core 0 even with a neighbour there.
  for (const auto& p : allocation.placements) EXPECT_EQ(p.core, 0u);
}

TEST(Hydra, HigherPriorityTaskGetsTighterPeriodUnderContention) {
  // One busy core, two demanding security tasks: the higher-priority one
  // (smaller Tmax) is placed first and must get at least the tightness of the
  // second.
  core::Instance inst;
  inst.num_cores = 1;
  inst.rt_tasks = {rt::make_rt_task("r", 4.0, 10.0)};  // 40 % load
  inst.security_tasks = {rt::make_security_task("hi", 30.0, 100.0, 1000.0),
                         rt::make_security_task("lo", 30.0, 100.0, 2000.0)};
  const auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible) << allocation.failure_reason;
  EXPECT_GE(allocation.placements[0].tightness, allocation.placements[1].tightness - 1e-9);
}

TEST(Hydra, UnschedulableWhenNoCoreFits) {
  core::Instance inst;
  inst.num_cores = 2;
  // Both cores nearly saturated by RT load.
  inst.rt_tasks = {rt::make_rt_task("r0", 9.0, 10.0), rt::make_rt_task("r1", 9.0, 10.0)};
  inst.security_tasks = {rt::make_security_task("s", 500.0, 1000.0, 3000.0)};
  const auto allocation = core::HydraAllocator().allocate(inst);
  EXPECT_FALSE(allocation.feasible);
  EXPECT_EQ(allocation.failed_task, 0u);
  EXPECT_FALSE(allocation.failure_reason.empty());
}

TEST(Hydra, FailedTaskIsFirstInPriorityOrderThatFails) {
  core::Instance inst;
  inst.num_cores = 1;
  inst.rt_tasks = {rt::make_rt_task("r", 8.0, 10.0)};  // 80 % load
  // "huge" has the smaller Tmax, so it is tried first and fails:
  // (900 + 8)/(1 − 0.8) = 4540 > Tmax = 3000.
  inst.security_tasks = {rt::make_security_task("huge", 900.0, 1000.0, 3000.0),
                         rt::make_security_task("tight", 10.0, 500.0, 5000.0)};
  const auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_FALSE(allocation.feasible);
  EXPECT_EQ(allocation.failed_task, 0u);  // index of "huge"
}

TEST(Hydra, RtPartitionFailurePropagates) {
  core::Instance inst;
  inst.num_cores = 1;
  inst.rt_tasks = {rt::make_rt_task("r0", 6.0, 10.0), rt::make_rt_task("r1", 6.0, 10.0)};
  inst.security_tasks = {rt::make_security_task("s", 1.0, 100.0, 1000.0)};
  const auto allocation = core::HydraAllocator().allocate(inst);
  EXPECT_FALSE(allocation.feasible);
  EXPECT_NE(allocation.failure_reason.find("partition"), std::string::npos);
}

TEST(Hydra, ExternalPartitionShapeChecked) {
  const auto inst = small_instance();
  rt::Partition wrong;
  wrong.num_cores = 5;  // mismatch
  wrong.core_of = {0, 0};
  EXPECT_THROW(core::HydraAllocator().allocate(inst, wrong), std::invalid_argument);
}

TEST(Hydra, GpSolverOptionMatchesClosedForm) {
  const auto inst = hydra::gen::uav_case_study(2);
  core::HydraOptions gp_opts;
  gp_opts.solver = core::PeriodSolver::kGeometricProgram;
  const auto a_cf = core::HydraAllocator().allocate(inst);
  const auto a_gp = core::HydraAllocator(gp_opts).allocate(inst);
  ASSERT_TRUE(a_cf.feasible);
  ASSERT_TRUE(a_gp.feasible);
  ASSERT_EQ(a_cf.placements.size(), a_gp.placements.size());
  for (std::size_t s = 0; s < a_cf.placements.size(); ++s) {
    EXPECT_EQ(a_cf.placements[s].core, a_gp.placements[s].core);
    EXPECT_NEAR(a_cf.placements[s].period, a_gp.placements[s].period,
                a_cf.placements[s].period * 1e-3);
  }
}

TEST(Hydra, BlockingTermReducesOrKeepsTightness) {
  const auto inst = hydra::gen::uav_case_study(2);
  core::HydraOptions blocked;
  blocked.blocking = 50.0;
  const auto plain = core::HydraAllocator().allocate(inst);
  const auto with_blocking = core::HydraAllocator(blocked).allocate(inst);
  ASSERT_TRUE(plain.feasible);
  ASSERT_TRUE(with_blocking.feasible);
  EXPECT_LE(with_blocking.cumulative_tightness(inst.security_tasks),
            plain.cumulative_tightness(inst.security_tasks) + 1e-9);
}

TEST(Hydra, CorePickAblationsStillValid) {
  const auto inst = hydra::gen::uav_case_study(4);
  for (const auto pick : {core::CorePick::kMaxTightness, core::CorePick::kFirstFeasible,
                          core::CorePick::kLeastLoaded, core::CorePick::kWorstTightness}) {
    core::HydraOptions opts;
    opts.core_pick = pick;
    const auto allocation = core::HydraAllocator(opts).allocate(inst);
    ASSERT_TRUE(allocation.feasible);
    const auto report = core::validate_allocation(inst, allocation);
    EXPECT_TRUE(report.valid) << report.problem;
  }
}

TEST(Hydra, MaxTightnessPickOptimalForFirstPlacedTask) {
  // Greedy argmax is only per-task optimal — globally, a different pick order
  // can do better (that myopia is exactly the Fig. 3 gap).  What MUST hold:
  // the first-placed (highest-priority) task gets the best tightness any
  // single core offers, so it is at least as tight as under the worst pick.
  const auto inst = hydra::gen::uav_case_study(2);
  core::HydraOptions worst;
  worst.core_pick = core::CorePick::kWorstTightness;
  const auto best_alloc = core::HydraAllocator().allocate(inst);
  const auto worst_alloc = core::HydraAllocator(worst).allocate(inst);
  ASSERT_TRUE(best_alloc.feasible);
  ASSERT_TRUE(worst_alloc.feasible);
  // Catalog index 0 (smallest Tmax) is placed first.
  EXPECT_GE(best_alloc.placements[0].tightness, worst_alloc.placements[0].tightness - 1e-9);
}

TEST(Hydra, UavCaseStudyAllCoreCounts) {
  for (const std::size_t m : {2u, 4u, 8u}) {
    const auto inst = hydra::gen::uav_case_study(m);
    const auto allocation = core::HydraAllocator().allocate(inst);
    ASSERT_TRUE(allocation.feasible) << "M = " << m;
    const auto report = core::validate_allocation(inst, allocation);
    EXPECT_TRUE(report.valid) << report.problem;
    // With ample cores the catalog should reach perfect tightness.
    if (m >= 4) {
      for (const auto& p : allocation.placements) EXPECT_NEAR(p.tightness, 1.0, 1e-9);
    }
  }
}

TEST(Instance, SecurityOnCoreGroupsPlacements) {
  const auto inst = hydra::gen::uav_case_study(2);
  const auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  std::size_t covered = 0;
  for (std::size_t c = 0; c < inst.num_cores; ++c) {
    for (const std::size_t s : allocation.security_on_core(c)) {
      EXPECT_EQ(allocation.placements[s].core, c);
      ++covered;
    }
  }
  EXPECT_EQ(covered, inst.security_tasks.size());
}

TEST(Instance, WithPriorityWeightsFollowsTmaxOrder) {
  auto inst = hydra::gen::uav_case_study(2);
  const auto weighted = core::with_priority_weights(inst);
  // Catalog is Tmax-ascending, so weights are NS, NS-1, ..., 1 in order.
  const auto n = weighted.security_tasks.size();
  for (std::size_t s = 0; s < n; ++s) {
    EXPECT_DOUBLE_EQ(weighted.security_tasks[s].weight, static_cast<double>(n - s));
  }
  // Weighted cumulative tightness scales accordingly on a feasible set.
  const auto plain_alloc = core::HydraAllocator().allocate(inst);
  const auto weighted_alloc = core::HydraAllocator().allocate(weighted);
  ASSERT_TRUE(plain_alloc.feasible);
  ASSERT_TRUE(weighted_alloc.feasible);
  EXPECT_GT(weighted_alloc.cumulative_tightness(weighted.security_tasks),
            plain_alloc.cumulative_tightness(inst.security_tasks));
}

TEST(Hydra, ChainConsistentOrderEndToEnd) {
  // Force a priority order where a large-Tmax task must be checked first
  // (the §V "check own binary before system binaries" pattern) and verify
  // allocator + validator + simulator all agree on it.
  core::Instance inst;
  inst.num_cores = 1;
  inst.rt_tasks = {rt::make_rt_task("r", 2.0, 10.0)};
  inst.security_tasks = {
      rt::make_security_task("self_check", 200.0, 1000.0, 20000.0),   // big Tmax
      rt::make_security_task("system_check", 400.0, 1200.0, 12000.0), // small Tmax
  };
  const hydra::sec::Chain chain{{0, 1}};  // self_check before system_check
  const auto order = hydra::sec::chain_consistent_order(inst.security_tasks, {chain});
  ASSERT_EQ(order[0], 0u);  // override flips the Tmax order

  core::HydraOptions opts;
  opts.priority_order = order;
  const auto allocation = core::HydraAllocator(opts).allocate(inst);
  ASSERT_TRUE(allocation.feasible) << allocation.failure_reason;
  // Under the override, self_check is placed first: its tightness can only
  // be >= system_check's on the shared core.
  EXPECT_GE(allocation.placements[0].tightness, allocation.placements[1].tightness - 1e-9);

  const auto report = core::validate_allocation(inst, allocation, 0.0, order);
  EXPECT_TRUE(report.valid) << report.problem;
}

TEST(Hydra, BadPriorityOrderRejected) {
  const auto inst = small_instance();
  core::HydraOptions opts;
  opts.priority_order = std::vector<std::size_t>{0};  // wrong size
  EXPECT_THROW(core::HydraAllocator(opts).allocate(inst), std::invalid_argument);
  opts.priority_order = std::vector<std::size_t>{0, 0};  // not a permutation
  EXPECT_THROW(core::HydraAllocator(opts).allocate(inst), std::invalid_argument);
}

// Property sweep: every feasible HYDRA allocation passes independent
// validation; infeasible results always name a failing task.
class HydraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HydraProperty, AllocationsAlwaysValidOrExplained) {
  hydra::util::Xoshiro256 rng(GetParam());
  for (int rep = 0; rep < 10; ++rep) {
    core::Instance inst;
    inst.num_cores = 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const int nr = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < nr; ++i) {
      const double period = rng.uniform(10.0, 500.0);
      inst.rt_tasks.push_back(rt::make_rt_task(
          "r" + std::to_string(i), rng.uniform(0.05, 0.3) * period, period));
    }
    const int ns = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < ns; ++i) {
      const double t_des = rng.uniform(500.0, 3000.0);
      inst.security_tasks.push_back(rt::make_security_task(
          "s" + std::to_string(i), rng.uniform(0.02, 0.4) * t_des, t_des, 10.0 * t_des));
    }
    const auto allocation = core::HydraAllocator().allocate(inst);
    if (allocation.feasible) {
      const auto report = core::validate_allocation(inst, allocation);
      EXPECT_TRUE(report.valid) << report.problem;
    } else {
      EXPECT_FALSE(allocation.failure_reason.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HydraProperty,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005, 6006));

// Monotonicity properties the greedy must satisfy despite its myopia.
class HydraMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HydraMonotonicity, MoreCoresNeverHurtFeasibility) {
  // The same tasks on more cores: feasibility must be preserved (every core's
  // subproblem set only grows), and tightness must not degrade.
  hydra::util::Xoshiro256 rng(GetParam());
  core::Instance inst;
  inst.num_cores = 2;
  const int nr = static_cast<int>(rng.uniform_int(2, 5));
  for (int i = 0; i < nr; ++i) {
    const double period = rng.uniform(20.0, 400.0);
    inst.rt_tasks.push_back(
        rt::make_rt_task("r" + std::to_string(i), rng.uniform(0.1, 0.3) * period, period));
  }
  const int ns = static_cast<int>(rng.uniform_int(2, 6));
  for (int i = 0; i < ns; ++i) {
    const double t_des = rng.uniform(800.0, 3000.0);
    inst.security_tasks.push_back(rt::make_security_task(
        "s" + std::to_string(i), rng.uniform(0.1, 0.4) * t_des, t_des, 10.0 * t_des));
  }

  // Keep the RT partition FIXED (pad with empty cores) so only the security
  // side of the design space grows.
  const auto base_partition = hydra::rt::partition_rt_tasks(inst.rt_tasks, 2);
  if (!base_partition.has_value()) GTEST_SKIP() << "RT tasks do not fit two cores";

  const auto small = core::HydraAllocator().allocate(inst, *base_partition);

  core::Instance wide = inst;
  wide.num_cores = 4;
  hydra::rt::Partition padded = *base_partition;
  padded.num_cores = 4;
  const auto large = core::HydraAllocator().allocate(wide, padded);

  if (small.feasible) {
    ASSERT_TRUE(large.feasible);
    EXPECT_GE(large.cumulative_tightness(wide.security_tasks),
              small.cumulative_tightness(inst.security_tasks) - 1e-9);
  }
}

TEST_P(HydraMonotonicity, DroppingAMonitorNeverHurts) {
  // Removing the lowest-priority security task cannot make the set
  // unschedulable or reduce the remaining tasks' tightness.
  hydra::util::Xoshiro256 rng(GetParam() ^ 0xabcdef);
  core::Instance inst;
  inst.num_cores = 2;
  inst.rt_tasks = {rt::make_rt_task("r", rng.uniform(2.0, 6.0), 20.0)};
  const int ns = static_cast<int>(rng.uniform_int(3, 6));
  for (int i = 0; i < ns; ++i) {
    const double t_des = rng.uniform(800.0, 2500.0);
    inst.security_tasks.push_back(rt::make_security_task(
        "s" + std::to_string(i), rng.uniform(0.2, 0.5) * t_des, t_des, 8.0 * t_des));
  }
  const auto full = core::HydraAllocator().allocate(inst);
  if (!full.feasible) GTEST_SKIP() << "full set infeasible";

  // Drop the globally lowest-priority task (largest Tmax).
  const auto order = hydra::rt::security_priority_order(inst.security_tasks);
  core::Instance reduced = inst;
  reduced.security_tasks.erase(reduced.security_tasks.begin() +
                               static_cast<std::ptrdiff_t>(order.back()));
  const auto partial = core::HydraAllocator().allocate(reduced);
  ASSERT_TRUE(partial.feasible);
  // Each surviving task keeps (at least) its tightness: the dropped task was
  // lowest priority, so it never interfered with the others' subproblems.
  std::size_t k = 0;
  for (std::size_t s = 0; s < inst.security_tasks.size(); ++s) {
    if (s == order.back()) continue;
    EXPECT_GE(partial.placements[k].tightness, full.placements[s].tightness - 1e-9)
        << inst.security_tasks[s].name;
    ++k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HydraMonotonicity,
                         ::testing::Values(21, 42, 63, 84, 105, 126));
