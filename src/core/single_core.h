// The SingleCore comparator (paper §IV): dedicate one core to security.
//
// All RT tasks are partitioned onto cores 0..M−2; every security task is
// assigned to core M−1.  Security tasks see no RT interference (the first
// term of Eq. (5) vanishes) but still interfere with each other, which is
// exactly what degrades their periods at scale.  Periods are adapted in
// priority order with the same Eq. (7) subproblem HYDRA uses, so the two
// schemes differ only in the placement policy — the comparison the paper
// makes.  A joint-optimization mode (paper: "solved using an approach
// similar to the one described in the Appendix") is available as an option.
#pragma once

#include <string>

#include "core/allocator.h"
#include "core/instance.h"
#include "core/period_adaptation.h"

namespace hydra::core {

struct SingleCoreOptions {
  PeriodSolver solver = PeriodSolver::kClosedForm;
  /// When true, after sequential adaptation the dedicated core's periods are
  /// re-optimized jointly (SumSurrogate GP), matching the appendix remark.
  bool joint_refinement = false;
  util::Millis blocking = 0.0;
};

class SingleCoreAllocator : public Allocator {
 public:
  explicit SingleCoreAllocator(SingleCoreOptions options = {})
      : Allocator("single-core"), options_(options) {}

  /// Requires M >= 2 (one core must remain for the RT workload).
  /// Infeasible when the RT tasks cannot be packed on M−1 cores or some
  /// security task admits no acceptable period on the dedicated core.
  Allocation allocate(const Instance& instance) const override;

  /// SingleCore's placement policy *is* its partition (RT on cores 0..M−2,
  /// security on core M−1), so the externally supplied hint is ignored and
  /// the scheme re-partitions; shared-partition comparisons should exclude it.
  Allocation allocate(const Instance& instance,
                      const rt::Partition& rt_partition) const override;

  std::string describe() const override;
  util::Millis blocking() const override { return options_.blocking; }

  const SingleCoreOptions& options() const { return options_; }

 private:
  SingleCoreOptions options_;
};

}  // namespace hydra::core
