// UUniFast (Bini & Buttazzo, 2005): the classic O(n) unbiased utilization
// generator for uniprocessor budgets (sum ≤ 1 guaranteed by construction;
// individual values are NOT capped).  Provided alongside Randfixedsum [23]
// because much of the single-core RT literature uses it; the generator
// ablation in the tests shows where the two distributions differ (UUniFast
// can exceed a per-task cap that Randfixedsum respects, which matters for
// multiprocessor sums > 1 — hence the paper's choice of Randfixedsum).
#pragma once

#include <vector>

#include "util/rng.h"

namespace hydra::gen {

/// Draws n utilizations summing to `sum`, uniformly over the simplex.
/// Requires n >= 1 and sum > 0.  Unlike randfixedsum there is no per-value
/// upper bound: a single value may take (nearly) the whole sum.
std::vector<double> uunifast(std::size_t n, double sum, util::Xoshiro256& rng);

/// UUniFast-Discard (Davis & Burns): redraws until every value is <= cap.
/// The standard multiprocessor adaptation; may throw std::runtime_error if
/// `max_attempts` draws all violate the cap (cap too tight for the sum).
std::vector<double> uunifast_discard(std::size_t n, double sum, double cap,
                                     util::Xoshiro256& rng, int max_attempts = 1000);

}  // namespace hydra::gen
