// Core-local busy history for the mode controller's sliding slack window.
//
// The controller measures a core's idle fraction over [t − window, t] at each
// decision instant t.  BusyWindow keeps the merged, chronological [from, to)
// execution intervals of one core with an advancing prune index, so a long
// horizon costs O(window) live entries instead of O(horizon).
//
// Pruning contract: `keep` must cover the query window PLUS the furthest a
// decision instant can lag the clock — a non-preemptive job admits the
// releases it ran over only at its completion, so a query can reach back up
// to `keep` ticks from an instant that itself trails the latest add() by the
// admission lag.  The caller folds that lag into `keep`; under that contract
// a pruned segment can never intersect a future query (property-tested
// against a naive oracle in test_busy_window).
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/units.h"

namespace hydra::sim {

class BusyWindow {
 public:
  explicit BusyWindow(util::SimTime keep) : keep_(keep) {}

  /// Records execution over [from, to).  Calls must be chronological
  /// (from >= the previous add's to); adjacent segments merge in place.
  void add(util::SimTime from, util::SimTime to) {
    if (to <= from) return;
    if (!segments_.empty() && segments_.back().second == from) {
      segments_.back().second = to;
    } else {
      segments_.emplace_back(from, to);
    }
    // Drop segments that can no longer intersect any future query window:
    // queries end at decision instants in (to - keep_, to] and reach back at
    // most keep_ ticks (the caller folded the admission lag into keep_).
    const util::SimTime cutoff = to > 2 * keep_ ? to - 2 * keep_ : 0;
    while (head_ < segments_.size() && segments_[head_].second <= cutoff) ++head_;
    if (head_ > 1024 && head_ * 2 > segments_.size()) {
      segments_.erase(segments_.begin(),
                      segments_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  /// Busy ticks inside [from, to).
  util::SimTime busy_in(util::SimTime from, util::SimTime to) const {
    util::SimTime busy = 0;
    for (std::size_t i = segments_.size(); i > head_; --i) {
      const auto& seg = segments_[i - 1];
      if (seg.second <= from) break;  // chronological: everything earlier too
      const util::SimTime lo = std::max(seg.first, from);
      const util::SimTime hi = std::min(seg.second, to);
      if (hi > lo) busy += hi - lo;
    }
    return busy;
  }

 private:
  util::SimTime keep_;
  std::size_t head_ = 0;
  std::vector<std::pair<util::SimTime, util::SimTime>> segments_;
};

}  // namespace hydra::sim
