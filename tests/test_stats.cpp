// Tests for the statistics utilities: the paper's ECDF definition, quantiles,
// summaries and the Fig. 2/3 ratio helpers.
#include <gtest/gtest.h>

#include "stats/ecdf.h"
#include "stats/ks.h"
#include "stats/summary.h"
#include "util/rng.h"

namespace stats = hydra::stats;

TEST(Ecdf, MatchesPaperDefinition) {
  // F̂(ε) = (1/α)·Σ 1[ζ_i <= ε] with samples {1, 2, 2, 5}.
  const stats::EmpiricalCdf cdf({5.0, 2.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);   // inclusive at sample points
  EXPECT_DOUBLE_EQ(cdf(1.999), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(4.999), 0.75);
  EXPECT_DOUBLE_EQ(cdf(5.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(100.0), 1.0);
}

TEST(Ecdf, MonotoneAndBounded) {
  const stats::EmpiricalCdf cdf({3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0});
  double prev = 0.0;
  for (double x = 0.0; x <= 10.0; x += 0.1) {
    const double v = cdf(x);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

TEST(Ecdf, EmptyRejected) {
  EXPECT_THROW(stats::EmpiricalCdf({}), std::invalid_argument);
}

TEST(Ecdf, QuantilesAreOrderStatistics) {
  const stats::EmpiricalCdf cdf({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.75), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.01), 10.0);
  EXPECT_THROW(cdf.quantile(0.0), std::invalid_argument);
  EXPECT_THROW(cdf.quantile(1.5), std::invalid_argument);
}

TEST(Ecdf, QuantileInvertsCdf) {
  const stats::EmpiricalCdf cdf({1.0, 3.0, 3.0, 7.0, 9.0});
  for (const double p : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    EXPECT_GE(cdf(cdf.quantile(p)), p - 1e-12);
  }
}

TEST(Ecdf, SeriesSpansRange) {
  const stats::EmpiricalCdf cdf({2.0, 4.0});
  const auto series = cdf.series(8.0, 5);  // x = 0, 2, 4, 6, 8
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.front().first, 0.0);
  EXPECT_DOUBLE_EQ(series.back().first, 8.0);
  EXPECT_DOUBLE_EQ(series[0].second, 0.0);
  EXPECT_DOUBLE_EQ(series[1].second, 0.5);
  EXPECT_DOUBLE_EQ(series[2].second, 1.0);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Ecdf, MinMaxMean) {
  const stats::EmpiricalCdf cdf({4.0, 1.0, 7.0});
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 7.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 4.0);
  EXPECT_EQ(cdf.size(), 3u);
}

TEST(Summary, KnownValues) {
  const auto s = stats::summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summary, EmptyRejected) {
  EXPECT_THROW(stats::summarize({}), std::invalid_argument);
}

TEST(MeanCi, CoversKnownMean) {
  const auto ci = stats::mean_ci95({4.0, 6.0, 5.0, 5.0, 4.5, 5.5});
  EXPECT_NEAR(ci.mean, 5.0, 1e-12);
  EXPECT_LT(ci.lo, 5.0);
  EXPECT_GT(ci.hi, 5.0);
  EXPECT_NEAR(ci.hi - ci.mean, ci.mean - ci.lo, 1e-12);  // symmetric
}

TEST(MeanCi, SingleSampleDegeneratesToPoint) {
  const auto ci = stats::mean_ci95({7.0});
  EXPECT_DOUBLE_EQ(ci.mean, 7.0);
  EXPECT_DOUBLE_EQ(ci.lo, 7.0);
  EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

TEST(MeanCi, WidthShrinksWithSampleSize) {
  std::vector<double> small, large;
  hydra::util::Xoshiro256 rng(1);
  for (int i = 0; i < 20; ++i) small.push_back(rng.uniform(0.0, 1.0));
  for (int i = 0; i < 2000; ++i) large.push_back(rng.uniform(0.0, 1.0));
  const auto ci_small = stats::mean_ci95(small);
  const auto ci_large = stats::mean_ci95(large);
  EXPECT_LT(ci_large.hi - ci_large.lo, ci_small.hi - ci_small.lo);
  // The large-sample CI must cover the true mean 0.5.
  EXPECT_LT(ci_large.lo, 0.5);
  EXPECT_GT(ci_large.hi, 0.5);
}

TEST(AcceptanceCounter, RatioAccounting) {
  stats::AcceptanceCounter c;
  EXPECT_DOUBLE_EQ(c.ratio(), 0.0);
  c.record(true);
  c.record(false);
  c.record(true);
  c.record(true);
  EXPECT_EQ(c.accepted, 3u);
  EXPECT_EQ(c.total, 4u);
  EXPECT_DOUBLE_EQ(c.ratio(), 0.75);
}

TEST(Improvement, SignConventionFavoursOurs) {
  EXPECT_DOUBLE_EQ(stats::improvement_percent(0.8, 0.4), 100.0);
  EXPECT_DOUBLE_EQ(stats::improvement_percent(0.4, 0.8), -50.0);
  EXPECT_DOUBLE_EQ(stats::improvement_percent(0.5, 0.5), 0.0);
  // Conventions at the zero boundary (Fig. 2's high-utilization tail).
  EXPECT_DOUBLE_EQ(stats::improvement_percent(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats::improvement_percent(0.3, 0.0), 100.0);
}

TEST(Gap, Fig3Convention) {
  // Δη = (η_OPT − η_HYDRA)/η_OPT × 100.
  EXPECT_DOUBLE_EQ(stats::gap_percent(2.0, 1.8), 10.0);
  EXPECT_DOUBLE_EQ(stats::gap_percent(2.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(stats::gap_percent(0.0, 0.0), 0.0);
}

TEST(Ks, IdenticalSamplesGiveZero) {
  const stats::EmpiricalCdf a({1.0, 2.0, 3.0});
  const stats::EmpiricalCdf b({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(stats::ks_statistic(a, b), 0.0);
  EXPECT_TRUE(stats::dominates(a, b));
  EXPECT_TRUE(stats::dominates(b, a));
}

TEST(Ks, DisjointSupportsGiveOne) {
  const stats::EmpiricalCdf a({1.0, 2.0});
  const stats::EmpiricalCdf b({10.0, 20.0});
  EXPECT_DOUBLE_EQ(stats::ks_statistic(a, b), 1.0);
  EXPECT_TRUE(stats::dominates(a, b));   // a's samples are smaller
  EXPECT_FALSE(stats::dominates(b, a));
}

TEST(Ks, HandComputedValue) {
  // a = {1, 3}, b = {2, 4}: at x=1 F_a=0.5, F_b=0 → diff 0.5 (the max).
  const stats::EmpiricalCdf a({1.0, 3.0});
  const stats::EmpiricalCdf b({2.0, 4.0});
  EXPECT_DOUBLE_EQ(stats::ks_statistic(a, b), 0.5);
  EXPECT_DOUBLE_EQ(stats::ks_statistic_one_sided(a, b), 0.5);
  EXPECT_DOUBLE_EQ(stats::ks_statistic_one_sided(b, a), 0.0);
}

TEST(Ks, SlackAbsorbsSmallCrossings) {
  // b dips slightly above a at one point.
  const stats::EmpiricalCdf a({1.0, 2.0, 3.0, 10.0});
  const stats::EmpiricalCdf b({1.5, 2.5, 3.5, 4.0});
  const double crossing = stats::ks_statistic_one_sided(b, a);
  EXPECT_GT(crossing, 0.0);
  EXPECT_FALSE(stats::dominates(a, b, 0.0));
  EXPECT_TRUE(stats::dominates(a, b, crossing));
}

TEST(AcceptanceImprovement, Fig2ConventionBoundedByHundred) {
  // (δ_H − δ_S)/δ_H × 100 — stays within the paper's 0–100 axis.
  EXPECT_DOUBLE_EQ(stats::acceptance_improvement_percent(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(stats::acceptance_improvement_percent(1.0, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(stats::acceptance_improvement_percent(1.0, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(stats::acceptance_improvement_percent(0.8, 0.2), 75.0);
  EXPECT_DOUBLE_EQ(stats::acceptance_improvement_percent(0.0, 0.0), 0.0);
  // Degenerate: SingleCore better would read negative (never clipped away).
  EXPECT_DOUBLE_EQ(stats::acceptance_improvement_percent(0.5, 1.0), -100.0);
}
