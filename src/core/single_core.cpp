#include "core/single_core.h"

#include <limits>

#include "core/joint_period.h"
#include "rt/interference.h"
#include "rt/priority.h"
#include "util/contracts.h"

namespace hydra::core {

Allocation SingleCoreAllocator::allocate(const Instance& instance) const {
  instance.validate();
  HYDRA_REQUIRE(instance.num_cores >= 2,
                "SingleCore needs at least two cores (one reserved for security)");

  // RT tasks go on cores 0..M−2.
  const std::size_t security_core = instance.num_cores - 1;
  const auto rt_partition_small =
      rt::partition_rt_tasks(instance.rt_tasks, instance.num_cores - 1);
  if (!rt_partition_small.has_value()) {
    return infeasible_allocation(std::numeric_limits<std::size_t>::max(),
                                 "RT tasks cannot be partitioned on M-1 cores");
  }

  // Re-express the partition over all M cores (core M−1 stays empty of RT).
  rt::Partition rt_partition;
  rt_partition.num_cores = instance.num_cores;
  rt_partition.core_of = rt_partition_small->core_of;

  Allocation result;
  result.rt_partition = rt_partition;
  result.placements.assign(instance.security_tasks.size(), TaskPlacement{});

  // Sequential period adaptation on the dedicated core, priority order.
  // No RT interference there — only the higher-priority security tasks.
  std::vector<rt::PlacedSecurityTask> placed;
  // Eq. (5) sums over the placed monitors, extended per commit in the same
  // order a per-task rebuild would accumulate them (bitwise identical).
  rt::InterferenceBound interferers = rt::interference_bound({}, {}, options_.blocking);
  const auto order = rt::security_priority_order(instance.security_tasks);
  for (const std::size_t s : order) {
    const rt::SecurityTask& task = instance.security_tasks[s];
    const PeriodAdaptation pa =
        options_.solver == PeriodSolver::kExactRta
            ? adapt_period_exact(task, {}, placed, options_.blocking, &interferers)
            : adapt_period(task, interferers, options_.solver);
    if (!pa.feasible) {
      return infeasible_allocation(
          s, "dedicated core admits no acceptable period for '" + task.name + "'");
    }
    result.placements[s] = TaskPlacement{security_core, pa.period, pa.tightness};
    placed.push_back(rt::PlacedSecurityTask{task.wcet, pa.period});
    interferers.add_interferer(task.wcet, pa.period);
  }
  result.feasible = true;

  if (options_.joint_refinement && !instance.security_tasks.empty()) {
    std::vector<std::size_t> core_of(instance.security_tasks.size(), security_core);
    JointPeriodOptions jopts;
    jopts.objective = JointObjective::kSignomialScp;
    jopts.blocking = options_.blocking;
    const JointPeriodResult joint =
        optimize_joint_periods(instance, rt_partition, core_of, jopts);
    if (joint.feasible &&
        joint.cumulative_tightness > result.cumulative_tightness(instance.security_tasks)) {
      for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
        result.placements[s].period = joint.periods[s];
        result.placements[s].tightness =
            instance.security_tasks[s].period_des / joint.periods[s];
      }
    }
  }
  return result;
}

Allocation SingleCoreAllocator::allocate(const Instance& instance,
                                         const rt::Partition& /*rt_partition*/) const {
  // The dedicated-core policy fixes the partition shape itself (see header).
  return allocate(instance);
}

std::string SingleCoreAllocator::describe() const {
  std::string text = "dedicated security core (RT on M-1 cores, security on core M-1); ";
  text += options_.solver == PeriodSolver::kGeometricProgram ? "GP subproblem"
                                                             : "closed-form subproblem";
  if (options_.joint_refinement) text += "; joint GP refinement of the dedicated core";
  if (options_.blocking > 0.0) text += "; blocking accounted";
  return text;
}

}  // namespace hydra::core
