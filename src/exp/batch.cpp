#include "exp/batch.h"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <stdexcept>

#include "io/taskset_io.h"

namespace hydra::exp {

namespace {

namespace fs = std::filesystem;

bool has_workload_extension(const fs::path& path) {
  const auto ext = path.extension().string();
  return ext == ".txt" || ext == ".taskset" || ext == ".workload";
}

/// Shell-style match supporting '*' (any run) and '?' (any one char), the two
/// metacharacters corpus specs need; backtracking over the single trailing
/// star position keeps it linear in practice.
bool glob_match(const std::string& pattern, const std::string& text) {
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace

std::vector<std::string> expand_workload_files(const std::string& spec) {
  std::vector<std::string> files;
  const fs::path path(spec);

  if (fs::is_directory(path)) {
    for (const auto& entry : fs::recursive_directory_iterator(path)) {
      if (entry.is_regular_file() && has_workload_extension(entry.path())) {
        files.push_back(entry.path().string());
      }
    }
    if (files.empty()) {
      throw std::runtime_error("no workload files (*.txt, *.taskset, *.workload) under " +
                               spec);
    }
  } else {
    const std::string name = path.filename().string();
    if (name.find('*') == std::string::npos && name.find('?') == std::string::npos) {
      return {spec};  // plain path; materialize reports load failures per item
    }
    const fs::path dir = path.parent_path().empty() ? fs::path(".") : path.parent_path();
    if (fs::is_directory(dir)) {
      for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file() && glob_match(name, entry.path().filename().string())) {
          files.push_back(entry.path().string());
        }
      }
    }
    if (files.empty()) throw std::runtime_error("no files match " + spec);
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::uint64_t instance_seed(std::uint64_t base_seed, std::size_t index) {
  // splitmix64 over the pair: decorrelates adjacent indices so instance k is
  // a fixed function of (base_seed, k) alone — the property the determinism
  // guarantee (jobs=1 ≡ jobs=N) rests on.
  std::uint64_t x = base_seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(index) + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::vector<BatchItem> enumerate(const BatchSpec& spec) {
  std::vector<BatchItem> items;
  if (!spec.files.empty()) {
    items.reserve(spec.files.size());
    for (std::size_t i = 0; i < spec.files.size(); ++i) {
      BatchItem item;
      item.index = i;
      item.label = spec.files[i];
      item.file = spec.files[i];
      items.push_back(std::move(item));
    }
    return items;
  }
  items.reserve(spec.count);
  for (std::size_t i = 0; i < spec.count; ++i) {
    BatchItem item;
    item.index = i;
    item.seed = instance_seed(spec.base_seed, i);
    item.label = "seed=" + std::to_string(item.seed);
    items.push_back(std::move(item));
  }
  return items;
}

MaterializedItem materialize(const BatchSpec& spec, const BatchItem& item) {
  MaterializedItem out;
  if (!item.file.empty()) {
    try {
      out.instance = io::load_instance(item.file);
      for (const auto& t : out.instance->rt_tasks) {
        out.rt_utilization += t.wcet / t.period;
      }
      for (const auto& t : out.instance->security_tasks) {
        out.sec_utilization += t.wcet / t.period_des;
      }
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    return out;
  }
  util::Xoshiro256 rng(item.seed);
  const auto drawn = gen::generate_filtered_instance(spec.synthetic, spec.total_utilization,
                                                     rng, spec.max_attempts);
  if (!drawn.has_value()) {
    out.error = "no Eq.(1)-satisfying task set at utilization " +
                std::to_string(spec.total_utilization);
    return out;
  }
  out.instance = drawn->instance;
  out.rt_utilization = drawn->rt_utilization;
  out.sec_utilization = drawn->sec_utilization;
  return out;
}

}  // namespace hydra::exp
