// Fig. 2 reproduction: improvement in acceptance ratio (HYDRA vs SingleCore)
// as a function of total utilization, for M ∈ {2, 4, 8} cores.
//
// Paper setup (§IV-B): utilization swept from 0.025·M to 0.975·M in steps of
// 0.025·M (39 points), 250 random tasksets per point, NR ∈ [3M, 10M],
// NS ∈ [2M, 5M], tasksets failing Eq. (1) discarded and redrawn.
//
// NOTE on the improvement formula: the paper prints
// (δ_SingleCore − δ_HYDRA)/δ_SingleCore × 100 %, which is negative whenever
// HYDRA accepts more — yet its Fig. 2 shows positive values on a 0–100 axis
// and the text says HYDRA outperforms.  We plot
// (δ_HYDRA − δ_SingleCore)/δ_HYDRA × 100 % (positive = HYDRA better, bounded
// by 100), the only reading consistent with the figure; see EXPERIMENTS.md.
//
// Usage: bench_fig2_acceptance [--cores 2,4,8] [--tasksets 250] [--seed 7]
//                              [--csv]
#include <iostream>

#include "core/hydra.h"
#include "core/single_core.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto cores = cli.get_int_list("cores", {2, 4, 8});
  const int tasksets = static_cast<int>(cli.get_int("tasksets", 250));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const bool csv = cli.get_bool("csv", false);

  io::print_banner(std::cout, "Fig. 2: improvement in acceptance ratio (HYDRA vs SingleCore)");
  std::cout << tasksets << " tasksets per utilization point; 39 points per core count.\n";

  const core::HydraAllocator hydra_alloc;
  const core::SingleCoreAllocator single_alloc;

  for (const auto m : cores) {
    gen::SyntheticConfig config;
    config.num_cores = static_cast<std::size_t>(m);

    io::Table table({"total utilization", "accept HYDRA", "accept SingleCore",
                     "improvement (%)"});
    hydra::util::Xoshiro256 rng(seed + static_cast<std::uint64_t>(m));

    for (int step = 1; step <= 39; ++step) {
      const double u = 0.025 * static_cast<double>(step) * static_cast<double>(m);
      hydra::stats::AcceptanceCounter hydra_counter, single_counter;
      for (int rep = 0; rep < tasksets; ++rep) {
        auto trial_rng = rng.fork();
        const auto drawn = gen::generate_filtered_instance(config, u, trial_rng);
        if (!drawn.has_value()) {
          // No taskset at this utilization satisfies Eq. (1): trivially
          // unschedulable for both schemes.
          hydra_counter.record(false);
          single_counter.record(false);
          continue;
        }
        hydra_counter.record(hydra_alloc.allocate(drawn->instance).feasible);
        single_counter.record(single_alloc.allocate(drawn->instance).feasible);
      }
      const double improvement = hydra::stats::acceptance_improvement_percent(
          hydra_counter.ratio(), single_counter.ratio());
      table.add_row({io::fmt(u, 3), io::fmt(hydra_counter.ratio(), 3),
                     io::fmt(single_counter.ratio(), 3), io::fmt(improvement, 1)});
    }

    io::print_banner(std::cout, "M = " + std::to_string(m) + " cores");
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }

  std::cout << "\nShape target: improvement ~0 at low utilization, rising "
               "toward 100% at high utilization (SingleCore runs out of RT "
               "capacity on M-1 cores and of security capacity on one core).\n";
  return 0;
}
