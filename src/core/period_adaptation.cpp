#include "core/period_adaptation.h"

#include <algorithm>
#include <cmath>

#include "gp/problem.h"
#include "gp/solver.h"
#include "gp/solver_registry.h"
#include "rt/analysis.h"
#include "util/contracts.h"

namespace hydra::core {

namespace {

PeriodAdaptation solve_closed_form(const rt::SecurityTask& task,
                                   const rt::InterferenceBound& bound) {
  PeriodAdaptation out;
  const auto t_min = min_feasible_period(task, bound);
  if (!t_min.has_value()) return out;

  const util::Millis period = std::max(task.period_des, *t_min);
  if (!util::leq_tol(period, task.period_max)) return out;
  // Defensive re-check of Eq. (6) at the chosen period.
  if (!rt::security_schedulable(task, period, bound)) return out;

  out.feasible = true;
  out.period = std::min(period, task.period_max);  // clamp tolerance overshoot
  out.tightness = task.period_des / out.period;
  return out;
}

PeriodAdaptation solve_gp(const rt::SecurityTask& task, const rt::InterferenceBound& bound) {
  PeriodAdaptation out;

  // One-variable GP per the paper's appendix:
  //   min Ts   s.t.  Tdes·Ts⁻¹ ≤ 1,  (1/Tmax)·Ts ≤ 1,
  //                  (Cs + A)·Ts⁻¹ + B ≤ 1.
  gp::GpProblem problem;
  const gp::VarId ts = problem.add_variable("Ts[" + task.name + "]");
  problem.set_objective(gp::Posynomial(problem.monomial(1.0).with(ts, 1.0)));
  problem.add_bounds(ts, task.period_des, task.period_max);

  gp::Posynomial sched = problem.posynomial();
  sched += problem.monomial(task.wcet + bound.const_part).with(ts, -1.0);
  if (bound.util_part > 0.0) sched += problem.monomial(bound.util_part);
  problem.add_constraint_leq1(std::move(sched), "Cs + I(Ts) <= Ts");

  // Start just inside the Tmax bound (the exact corner sits on the box
  // boundary and would trigger the solver's phase-I program needlessly).
  const double start =
      std::max(task.period_des * (1.0 + 1e-9), task.period_max * (1.0 - 1e-6));
  // No options plumbing reaches this one-variable solve (contego and the
  // tightening passes call adapt_period directly), so backend selection
  // arrives ambiently through the innermost GpBackendScope.
  const gp::SolveResult sr = gp::solve_with_backend(problem, std::vector<double>{start});
  if (!sr.ok()) return out;

  out.feasible = true;
  out.period = std::clamp(sr.x[0], task.period_des, task.period_max);
  out.tightness = task.period_des / out.period;
  return out;
}

}  // namespace

std::optional<util::Millis> min_feasible_period(const rt::SecurityTask& task,
                                                const rt::InterferenceBound& bound) {
  const double slack_rate = 1.0 - bound.util_part;
  if (slack_rate <= util::kTimeEpsilon) return std::nullopt;
  return (task.wcet + bound.const_part) / slack_rate;
}

PeriodAdaptation adapt_period(const rt::SecurityTask& task, const rt::InterferenceBound& bound,
                              PeriodSolver solver) {
  rt::validate(task);
  switch (solver) {
    case PeriodSolver::kClosedForm:
      return solve_closed_form(task, bound);
    case PeriodSolver::kGeometricProgram:
      return solve_gp(task, bound);
    case PeriodSolver::kExactRta:
      HYDRA_REQUIRE(false, "kExactRta needs interferer lists; call adapt_period_exact");
  }
  HYDRA_ASSERT(false, "unknown PeriodSolver");
}

std::size_t tighten_core_periods(const std::vector<rt::RtTask>& rt_on_core,
                                 std::vector<CommittedSecurityTask>& tasks,
                                 util::Millis blocking, std::size_t rounds,
                                 PeriodSolver solver) {
  HYDRA_REQUIRE(solver != PeriodSolver::kExactRta,
                "tighten_core_periods serves the affine Eq. (5) bound; exact RTA "
                "allocations tighten through adapt_period_exact");
  std::size_t changed = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    // Eq. (5) sums over the RT tasks plus the already-revisited (tightened)
    // higher-priority monitors, grown with add_interferer as the pass walks
    // down the priority order — the same accumulation order a per-task
    // rebuild would use, so the sums match a rebuild bit-for-bit.  Rebuilt
    // each round because every period may have moved.
    rt::InterferenceBound hp_sums = rt::interference_bound(rt_on_core, {}, blocking);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const rt::SecurityTask& task = tasks[i].task;

      // The task's own Eq. (7) optimum against the tightened hp periods.
      const PeriodAdaptation own = adapt_period(task, hp_sums, solver);
      if (!own.feasible) {
        // Saturated core: keep the (feasible) period.
        hp_sums.add_interferer(task.wcet, tasks[i].period);
        continue;
      }

      // Lower bounds from the not-yet-revisited lower-priority tasks: each τj
      // must stay feasible at its CURRENT period Tj while τi shrinks, i.e.
      // (1 + Tj/Ti)·Ci ≤ Tj − aj, where aj is τj's demand excluding τi.
      util::Millis floor = own.period;
      for (std::size_t j = i + 1; j < tasks.size(); ++j) {
        const util::Millis tj = tasks[j].period;
        double aj = tasks[j].task.wcet + blocking;
        for (const auto& r : rt_on_core) aj += (1.0 + tj / r.period) * r.wcet;
        for (std::size_t h = 0; h < j; ++h) {
          if (h == i) continue;
          aj += (1.0 + tj / tasks[h].period) * tasks[h].task.wcet;
        }
        const double slack = tj - aj - task.wcet;
        if (slack <= util::kTimeEpsilon) {
          floor = tasks[i].period;  // no room: τj sits on its constraint already
          break;
        }
        floor = std::max(floor, task.wcet * tj / slack);
      }

      const util::Millis tightened =
          std::max(task.period_des, std::min(tasks[i].period, floor));
      if (tightened < tasks[i].period - util::kTimeEpsilon) ++changed;
      tasks[i].period = std::min(tasks[i].period, tightened);
      hp_sums.add_interferer(task.wcet, tasks[i].period);
    }
  }
  return changed;
}

void tighten_core_placements(const std::vector<rt::RtTask>& rt_on_core,
                             const std::vector<std::size_t>& members,
                             const std::vector<rt::SecurityTask>& security_tasks,
                             std::vector<TaskPlacement>& placements, std::size_t rounds,
                             PeriodSolver solver) {
  if (members.empty()) return;
  std::vector<CommittedSecurityTask> committed;
  committed.reserve(members.size());
  for (const std::size_t s : members) {
    committed.push_back(CommittedSecurityTask{security_tasks[s], placements[s].period});
  }
  tighten_core_periods(rt_on_core, committed, 0.0, rounds, solver);
  for (std::size_t k = 0; k < members.size(); ++k) {
    const std::size_t s = members[k];
    placements[s].period = committed[k].period;
    placements[s].tightness = security_tasks[s].period_des / committed[k].period;
  }
}

PeriodAdaptation adapt_period_exact(const rt::SecurityTask& task,
                                    const std::vector<rt::RtTask>& rt_on_core,
                                    const std::vector<rt::PlacedSecurityTask>& hp_security,
                                    util::Millis blocking,
                                    const rt::InterferenceBound* interferer_sums) {
  rt::validate(task);
  PeriodAdaptation out;
  const auto response = rt::security_response_time(task, task.period_max, rt_on_core,
                                                   hp_security, blocking, interferer_sums);
  if (!response.has_value()) return out;
  out.feasible = true;
  out.period = std::clamp(*response, task.period_des, task.period_max);
  out.tightness = task.period_des / out.period;
  return out;
}

}  // namespace hydra::core
