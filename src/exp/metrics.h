// Reusable RowMetric hooks shared by benches and tests.
//
// RowMetrics (exp/engine.h) attach extra deterministic per-row measurements
// to validated (instance, scheme) evaluations.  This header collects the
// library-provided ones so benches declare them by name instead of re-rolling
// the lambdas.
#pragma once

#include <vector>

#include "exp/engine.h"

namespace hydra::exp {

/// Period-mode accounting for the adaptive allocator families (Contego's
/// best/minimum monitoring modes): three RowMetrics counting, over the
/// validated placements of a row,
///
///   * "best_mode_tasks" — monitors at their desired period (Ts ≈ Tdes, η ≈ 1),
///   * "min_mode_tasks"  — monitors left at the loosest period (Ts ≈ Tmax),
///   * "adapted_tasks"   — monitors strictly between the two modes.
///
/// The three counts always sum to NS.  `rel_tol` is the relative tolerance
/// deciding when a period sits ON a mode boundary (solver output is exact for
/// the closed form; the GP route lands within solver tolerance).
std::vector<RowMetric> period_mode_metrics(double rel_tol = 1e-9);

}  // namespace hydra::exp
