// Fig. 2 reproduction: improvement in acceptance ratio (HYDRA vs SingleCore)
// as a function of total utilization, for M ∈ {2, 4, 8} cores.
//
// Paper setup (§IV-B): utilization swept from 0.025·M to 0.975·M in steps of
// 0.025·M (39 points), 250 random tasksets per point, NR ∈ [3M, 10M],
// NS ∈ [2M, 5M], tasksets failing Eq. (1) discarded and redrawn.
//
// Runs on the batch ExplorationEngine: every utilization point is one
// BatchSpec evaluated across the worker pool (--jobs), with deterministic
// per-instance seeds, so results are identical for any thread count.  The
// first scheme in --schemes is the candidate, the second the baseline; every
// per-(instance, scheme) row can be captured with --out sweep.jsonl.
//
// NOTE on the improvement formula: the paper prints
// (δ_SingleCore − δ_HYDRA)/δ_SingleCore × 100 %, which is negative whenever
// HYDRA accepts more — yet its Fig. 2 shows positive values on a 0–100 axis
// and the text says HYDRA outperforms.  We plot
// (δ_HYDRA − δ_SingleCore)/δ_HYDRA × 100 % (positive = HYDRA better, bounded
// by 100), the only reading consistent with the figure; see EXPERIMENTS.md.
//
// Usage: bench_fig2_acceptance [--cores 2,4,8] [--tasksets 250] [--seed 7]
//                              [--schemes hydra,single-core] [--jobs 1]
//                              [--out sweep.jsonl] [--csv]
#include <iostream>
#include <memory>
#include <vector>

#include "exp/engine.h"
#include "exp/sinks.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace hexp = hydra::exp;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto cores = cli.get_int_list("cores", {2, 4, 8});
  const auto tasksets = static_cast<std::size_t>(cli.get_int("tasksets", 250));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const auto scheme_names = cli.get_string_list("schemes", {"hydra", "single-core"});
  const bool csv = cli.get_bool("csv", false);

  if (scheme_names.size() != 2) {
    std::cerr << "--schemes expects exactly two registered names "
                 "(candidate,baseline)\n";
    return 2;
  }

  hexp::EngineOptions engine_options;
  engine_options.schemes = scheme_names;
  engine_options.jobs = static_cast<std::size_t>(cli.get_int("jobs", 1));
  const hexp::ExplorationEngine engine(engine_options);

  std::unique_ptr<hexp::ResultSink> file_sink;
  std::vector<hexp::ResultSink*> sinks;
  if (cli.has("out")) {
    file_sink = hexp::make_file_sink(cli.get_string("out", ""));
    sinks.push_back(file_sink.get());
  }

  io::print_banner(std::cout, "Fig. 2: improvement in acceptance ratio (" +
                                  scheme_names[0] + " vs " + scheme_names[1] + ")");
  std::cout << tasksets << " tasksets per utilization point; 39 points per core count.\n";

  for (const auto m : cores) {
    gen::SyntheticConfig config;
    config.num_cores = static_cast<std::size_t>(m);

    io::Table table({"total utilization", "accept " + scheme_names[0],
                     "accept " + scheme_names[1], "improvement (%)"});

    for (int step = 1; step <= 39; ++step) {
      const double u = 0.025 * static_cast<double>(step) * static_cast<double>(m);

      hexp::BatchSpec spec;
      spec.count = tasksets;
      spec.synthetic = config;
      spec.total_utilization = u;
      // Decorrelate (core count, step) pairs while staying reproducible.
      spec.base_seed = seed + (static_cast<std::uint64_t>(m) << 32) +
                       (static_cast<std::uint64_t>(step) << 8);

      // Rows go to the caller thread in batch order; `sinks` captures the
      // optional --out file across every point of the sweep.
      const auto summary = engine.run(spec, sinks);

      hydra::stats::AcceptanceCounter candidate, baseline;
      for (const auto& row : summary.rows) {
        // A "no-instance" row means Eq. (1) filtered the whole draw budget:
        // trivially unschedulable for both schemes, as in the paper.
        const bool accepted = row.status == "ok" && row.feasible && row.validated;
        if (row.scheme == scheme_names[0]) candidate.record(accepted);
        if (row.scheme == scheme_names[1]) baseline.record(accepted);
      }
      const double improvement = hydra::stats::acceptance_improvement_percent(
          candidate.ratio(), baseline.ratio());
      table.add_row({io::fmt(u, 3), io::fmt(candidate.ratio(), 3),
                     io::fmt(baseline.ratio(), 3), io::fmt(improvement, 1)});
    }

    io::print_banner(std::cout, "M = " + std::to_string(m) + " cores");
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }
  if (file_sink) file_sink->end();

  std::cout << "\nShape target: improvement ~0 at low utilization, rising "
               "toward 100% at high utilization (SingleCore runs out of RT "
               "capacity on M-1 cores and of security capacity on one core).\n";
  return 0;
}
