// Task models (paper §II).
//
// Real-time tasks are sporadic with implicit deadlines: τr = (Cr, Tr, Dr),
// Dr = Tr unless stated otherwise.  Security tasks follow the sporadic
// security-task model of [10]: τs = (Cs, Tdes_s, Tmax_s) — any period in
// [Tdes, Tmax] is acceptable, and quality is the tightness ηs = Tdes/Ts.
//
// All times are util::Millis (double milliseconds).
#pragma once

#include <string>
#include <vector>

#include "util/contracts.h"
#include "util/units.h"

namespace hydra::rt {

/// A sporadic hard real-time task.
struct RtTask {
  std::string name;
  util::Millis wcet = 0.0;      ///< Cr: worst-case execution time
  util::Millis period = 0.0;    ///< Tr: minimum inter-arrival separation
  util::Millis deadline = 0.0;  ///< Dr: relative deadline (implicit ⇒ == period)

  double utilization() const { return wcet / period; }
};

/// Constructs an implicit-deadline RT task (Dr = Tr).
inline RtTask make_rt_task(std::string name, util::Millis wcet, util::Millis period) {
  return RtTask{std::move(name), wcet, period, period};
}

/// A sporadic security monitoring task (paper §II-C).
struct SecurityTask {
  std::string name;
  util::Millis wcet = 0.0;        ///< Cs
  util::Millis period_des = 0.0;  ///< Tdes_s: desired (minimum) period
  util::Millis period_max = 0.0;  ///< Tmax_s: largest period still effective
  double weight = 1.0;            ///< ωs: importance weight in the objective

  /// Utilization if the task ran at its desired period (its maximum demand).
  double max_utilization() const { return wcet / period_des; }
  /// Utilization at the loosest acceptable period (its minimum demand).
  double min_utilization() const { return wcet / period_max; }
  /// Lower bound of the tightness range: Tdes/Tmax ≤ η ≤ 1.
  double min_tightness() const { return period_des / period_max; }
};

inline SecurityTask make_security_task(std::string name, util::Millis wcet,
                                       util::Millis period_des, util::Millis period_max,
                                       double weight = 1.0) {
  return SecurityTask{std::move(name), wcet, period_des, period_max, weight};
}

/// Throws std::invalid_argument unless the task is well-formed
/// (0 < C <= D <= T, all finite).
void validate(const RtTask& task);

/// Throws std::invalid_argument unless 0 < Cs <= Tdes <= Tmax and weight > 0.
void validate(const SecurityTask& task);

/// Validates every task in a set.
void validate(const std::vector<RtTask>& tasks);
void validate(const std::vector<SecurityTask>& tasks);

/// Sum of Cr/Tr.
double total_utilization(const std::vector<RtTask>& tasks);

/// Sum of Cs/Tdes (the demand if every monitor ran at its desired rate).
double total_max_utilization(const std::vector<SecurityTask>& tasks);

}  // namespace hydra::rt
