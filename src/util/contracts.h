// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// HYDRA_REQUIRE  — precondition on arguments supplied by the caller; violations
//                  throw std::invalid_argument so library misuse is reported
//                  with a message instead of undefined behaviour.
// HYDRA_ASSERT   — internal invariant; violations indicate a bug in this
//                  library and throw std::logic_error.
//
// Both are always on: this is an analysis/design-space-exploration library,
// not a hot inner loop, and silent wrong answers are worse than the cost of a
// branch.
#pragma once

#include <stdexcept>
#include <string>

namespace hydra::util {

[[noreturn]] inline void contract_failure_require(const char* expr, const char* file, int line,
                                                  const std::string& msg) {
  throw std::invalid_argument(std::string("precondition violated: (") + expr + ") at " + file +
                              ":" + std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}

[[noreturn]] inline void contract_failure_assert(const char* expr, const char* file, int line,
                                                 const std::string& msg) {
  throw std::logic_error(std::string("internal invariant violated: (") + expr + ") at " + file +
                         ":" + std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}

}  // namespace hydra::util

#define HYDRA_REQUIRE(expr, msg)                                                  \
  do {                                                                            \
    if (!(expr)) {                                                                \
      ::hydra::util::contract_failure_require(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                             \
  } while (false)

#define HYDRA_ASSERT(expr, msg)                                                  \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::hydra::util::contract_failure_assert(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                            \
  } while (false)
