#include "exp/metrics.h"

#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/mode_table.h"
#include "io/taskset_io.h"
#include "stats/summary.h"
#include "util/units.h"

namespace hydra::exp {

namespace {

/// Canonical parameter strings for RowMetric::identity — every knob that
/// changes the metric's VALUES must appear, or the sweep fingerprint cannot
/// tell two configurations apart (and a shard merge would silently mix
/// them).
std::string controller_identity(const sim::ModeControllerConfig& config) {
  // An empty policy resolves against the DEFAULT here, not the ambient
  // ControllerScope: a metric identity must be a pure function of the config
  // (the sweep fingerprints its ambient policy separately via
  // SweepSpec::controller_policy).
  const std::string policy =
      config.policy.empty() ? sim::kDefaultControllerPolicy : config.policy;
  return "ctl(p=" + policy + ",w=" + std::to_string(config.slack_window) +
         ",up=" + format_double(config.tighten_threshold) +
         ",down=" + format_double(config.relax_threshold) +
         ",dwell=" + std::to_string(config.min_dwell) +
         ",budget=" + std::to_string(config.switch_budget) +
         ",levels=" + std::to_string(config.num_levels) +
         ",boost=" + std::to_string(config.boost_window) + ")";
}

enum class PeriodMode { kBest, kMin, kAdapted };

PeriodMode mode_of(const core::TaskPlacement& placement, const rt::SecurityTask& task,
                   double rel_tol) {
  if (util::approx_equal(placement.period, task.period_des, rel_tol, rel_tol)) {
    return PeriodMode::kBest;
  }
  if (util::approx_equal(placement.period, task.period_max, rel_tol, rel_tol)) {
    return PeriodMode::kMin;
  }
  return PeriodMode::kAdapted;
}

double count_mode(const core::Instance& instance, const core::DesignPoint& point,
                  PeriodMode mode, double rel_tol) {
  std::size_t count = 0;
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    if (mode_of(point.allocation.placements[s], instance.security_tasks[s], rel_tol) ==
        mode) {
      ++count;
    }
  }
  return static_cast<double>(count);
}

}  // namespace

namespace {

/// Everything the adaptive metric family reads off one row, computed in one
/// pass so N hooks cost one simulation bundle, not N.
struct AdaptiveRowResults {
  double adaptive_mean = 0.0;
  double adaptive_p95 = 0.0;
  double switches = 0.0;
  double adapted_residency = 0.0;
  double denied_dwell = 0.0;
  double denied_budget = 0.0;
  double static_mean = 0.0;
  double min_mode_mean = 0.0;
  double global_mean = 0.0;
};

double mean_of(const sim::DetectionResult& result, const char* what) {
  if (result.deadline_misses != 0) {
    throw std::runtime_error(std::string(what) + ": simulation missed deadlines");
  }
  if (result.detection_ms.empty()) {
    throw std::runtime_error(std::string(what) + ": no attack was ever detected");
  }
  return stats::summarize(result.detection_ms).mean;
}

/// Cache key fully determining the bundle: the instance text round-trip, the
/// scheme's committed placements, and every config field that feeds the
/// simulations.  Collisions are impossible (the key IS the input), so the
/// memo can never change a value — only skip recomputing it.
std::string adaptive_row_key(const core::Instance& instance, const core::DesignPoint& point,
                             const AdaptiveMetricsConfig& config) {
  std::ostringstream key;
  key.precision(std::numeric_limits<double>::max_digits10);
  key << point.scheme << '\n';
  for (const auto& place : point.allocation.placements) {
    key << place.core << ':' << place.period << ';';
  }
  key << '\n'
      << config.detection.horizon << ' ' << config.detection.trials << ' '
      << config.detection.seed << ' ' << static_cast<int>(config.detection.scope) << ' '
      // The policy the simulation will ACTUALLY run — resolved through the
      // ambient ControllerScope at call time, so the thread-local memo can
      // never serve a result simulated under a different ambient policy.
      << sim::resolve_controller_policy(config.controller.policy) << ' '
      << config.controller.slack_window << ' ' << config.controller.tighten_threshold
      << ' ' << config.controller.relax_threshold << ' ' << config.controller.min_dwell
      << ' ' << config.controller.switch_budget << ' ' << config.controller.num_levels
      << ' ' << config.controller.boost_window << ' ' << config.include_static << ' '
      << config.include_min_mode << ' ' << config.include_global << '\n'
      << io::to_text(instance);
  return key.str();
}

AdaptiveRowResults compute_adaptive_row(const core::Instance& instance,
                                        const core::DesignPoint& point,
                                        const AdaptiveMetricsConfig& config) {
  AdaptiveRowResults out;
  const auto adaptive = sim::measure_detection_times_adaptive(
      instance, point.allocation, config.detection, config.controller);
  out.adaptive_mean = mean_of(adaptive.detection, "adaptive");
  out.adaptive_p95 = stats::percentile(adaptive.detection.detection_ms, 0.95);
  out.switches = static_cast<double>(adaptive.modes.total_switches());
  out.adapted_residency = adaptive.modes.mean_adapted_fraction(adaptive.switchable_tasks);
  out.denied_dwell = static_cast<double>(adaptive.modes.total_denied_dwell());
  out.denied_budget = static_cast<double>(adaptive.modes.total_denied_budget());
  if (config.include_static) {
    out.static_mean = mean_of(
        sim::measure_detection_times(instance, point.allocation, config.detection),
        "static");
  }
  if (config.include_min_mode) {
    out.min_mode_mean = mean_of(
        sim::measure_detection_times(
            instance, core::min_mode_allocation(instance, point.allocation),
            config.detection),
        "min-mode");
  }
  if (config.include_global) {
    out.global_mean = mean_of(
        sim::measure_detection_times_global(instance, point.allocation, config.detection),
        "global");
  }
  return out;
}

/// Memoized bundle lookup.  The cache is thread_local and size 1: the engine
/// invokes a row's metric hooks back-to-back on the worker that owns the row,
/// so consecutive hooks hit while concurrent workers never contend.  Values
/// are pure functions of the key, so caching cannot perturb determinism.
const AdaptiveRowResults& cached_adaptive_row(const core::Instance& instance,
                                              const core::DesignPoint& point,
                                              const AdaptiveMetricsConfig& config) {
  thread_local std::string cached_key;
  thread_local AdaptiveRowResults cached_results;
  std::string key = adaptive_row_key(instance, point, config);
  if (key != cached_key) {
    cached_results = compute_adaptive_row(instance, point, config);
    cached_key = std::move(key);
  }
  return cached_results;
}

}  // namespace

std::vector<RowMetric> adaptive_detection_metrics(const AdaptiveMetricsConfig& config) {
  // Fail at construction, not first evaluation: a bench wiring up an
  // impossible controller should die before the sweep starts.
  config.controller.validate();
  std::vector<RowMetric> metrics;
  const std::string identity =
      detection_metric_identity(config.detection) + controller_identity(config.controller);
  const auto add = [&](std::string name, double AdaptiveRowResults::*field,
                       bool suffixed = true) {
    // The suffix marks the policy family; the baselines are policy-free and
    // keep their canonical names (a bench includes them on one family only).
    if (suffixed) name += config.name_suffix;
    metrics.push_back(RowMetric{
        std::move(name),
        [config, field](const core::Instance& instance, const core::DesignPoint& point) {
          return cached_adaptive_row(instance, point, config).*field;
        },
        identity});
  };
  add("adaptive_mean_detection_ms", &AdaptiveRowResults::adaptive_mean);
  add("adaptive_p95_detection_ms", &AdaptiveRowResults::adaptive_p95);
  add("adaptive_switches", &AdaptiveRowResults::switches);
  add("adapted_residency", &AdaptiveRowResults::adapted_residency);
  add("adaptive_denied_dwell", &AdaptiveRowResults::denied_dwell);
  add("adaptive_denied_budget", &AdaptiveRowResults::denied_budget);
  if (config.include_static) {
    add("static_mean_detection_ms", &AdaptiveRowResults::static_mean, false);
  }
  if (config.include_min_mode) {
    add("min_mode_mean_detection_ms", &AdaptiveRowResults::min_mode_mean, false);
  }
  if (config.include_global) {
    add("global_mean_detection_ms", &AdaptiveRowResults::global_mean, false);
  }
  return metrics;
}

std::string detection_metric_identity(const sim::DetectionConfig& config) {
  return "det(h=" + std::to_string(config.horizon) +
         ",n=" + std::to_string(config.trials) +
         ",seed=" + std::to_string(config.seed) +
         ",scope=" + std::to_string(static_cast<int>(config.scope)) + ")";
}

RowMetric global_detection_metric(const sim::DetectionConfig& config, std::string name) {
  return RowMetric{
      std::move(name),
      [config](const core::Instance& instance, const core::DesignPoint& point) {
        return mean_of(
            sim::measure_detection_times_global(instance, point.allocation, config),
            "global");
      },
      detection_metric_identity(config)};
}

std::vector<RowMetric> period_mode_metrics(double rel_tol) {
  const std::string identity = "tol(" + format_double(rel_tol) + ")";
  return {
      RowMetric{"best_mode_tasks",
                [rel_tol](const core::Instance& instance, const core::DesignPoint& point) {
                  return count_mode(instance, point, PeriodMode::kBest, rel_tol);
                },
                identity},
      RowMetric{"min_mode_tasks",
                [rel_tol](const core::Instance& instance, const core::DesignPoint& point) {
                  return count_mode(instance, point, PeriodMode::kMin, rel_tol);
                },
                identity},
      RowMetric{"adapted_tasks",
                [rel_tol](const core::Instance& instance, const core::DesignPoint& point) {
                  return count_mode(instance, point, PeriodMode::kAdapted, rel_tol);
                },
                identity},
  };
}

}  // namespace hydra::exp
