// Small dense row-major matrix for the geometric-programming solver.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector.h"
#include "util/contracts.h"

namespace hydra::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double value = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Reshapes to rows×cols with every entry set to `value`, reusing the
  /// existing allocation when capacity allows — the reset path for
  /// caller-owned scratch buffers.
  void assign(std::size_t rows, std::size_t cols, double value = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, value);
  }

  double& operator()(std::size_t r, std::size_t c) {
    HYDRA_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    HYDRA_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  Matrix& operator+=(const Matrix& rhs) {
    HYDRA_REQUIRE(rhs.rows_ == rows_ && rhs.cols_ == cols_, "matrix size mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
  }
  Matrix& operator*=(double s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  /// this += scale * rhs, without materializing the scaled copy.
  Matrix& add_scaled(const Matrix& rhs, double scale) {
    HYDRA_REQUIRE(rhs.rows_ == rows_ && rhs.cols_ == cols_, "matrix size mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * rhs.data_[i];
    return *this;
  }

  friend Vector operator*(const Matrix& m, const Vector& v) {
    HYDRA_REQUIRE(m.cols_ == v.size(), "matrix-vector size mismatch");
    Vector out(m.rows_);
    for (std::size_t r = 0; r < m.rows_; ++r) {
      double acc = 0.0;
      for (std::size_t c = 0; c < m.cols_; ++c) acc += m(r, c) * v[c];
      out[r] = acc;
    }
    return out;
  }

  /// Rank-1 update: this += scale * v * v^T (used to assemble Hessians).
  void add_outer(const Vector& v, double scale) {
    HYDRA_REQUIRE(rows_ == cols_ && rows_ == v.size(), "outer-product size mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
      const double vr = scale * v[r];
      if (vr == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] += vr * v[c];
    }
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hydra::linalg
