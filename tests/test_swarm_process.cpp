// Process-backend contract tests: the launcher-template expansion and
// round-robin host assignment behind RemoteProcessBackend (run end-to-end
// through a plain local launcher — the same shape CI uses, no ssh needed),
// and the LocalProcessBackend waitpid edge cases (EINTR must retry, ECHILD
// must stay a loud crash) via the injectable wait seam.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "swarm/process.h"

namespace swarm = hydra::swarm;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Polls until the worker reports an exit status (real children need a
/// moment to die); fails the test rather than spinning forever.
swarm::ExitStatus wait_for_exit(swarm::ProcessBackend& backend,
                                swarm::WorkerId id) {
  for (int i = 0; i < 2000; ++i) {
    if (const auto exit = backend.poll(id)) return *exit;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ADD_FAILURE() << "worker " << id << " never exited";
  return {};
}

}  // namespace

TEST(ShellQuote, WrapsAndEscapes) {
  EXPECT_EQ(swarm::shell_quote("plain"), "'plain'");
  EXPECT_EQ(swarm::shell_quote(""), "''");
  EXPECT_EQ(swarm::shell_quote("has space"), "'has space'");
  EXPECT_EQ(swarm::shell_quote("it's"), "'it'\\''s'");
  EXPECT_EQ(swarm::shell_quote("$HOME `ls` \"x\""), "'$HOME `ls` \"x\"'");
  EXPECT_EQ(swarm::shell_join({"a", "b c"}), "'a' 'b c'");
}

TEST(ExpandLauncher, SshShapePutsQuotedCommandAfterHost) {
  const auto argv = swarm::expand_launcher("ssh {host} {cmd}", "m3",
                                           {"./bench", "--jobs", "2"});
  ASSERT_EQ(argv.size(), 3u);
  EXPECT_EQ(argv[0], "ssh");
  EXPECT_EQ(argv[1], "m3");
  EXPECT_EQ(argv[2], "'./bench' '--jobs' '2'");
}

TEST(ExpandLauncher, HostSubstitutesInsideLargerTokens) {
  const auto argv =
      swarm::expand_launcher("ssh user@{host}.cluster {cmd}", "n1", {"w"});
  EXPECT_EQ(argv[1], "user@n1.cluster");
}

TEST(ExpandLauncher, TemplateWithoutCmdAppendsArgvVerbatim) {
  const auto argv = swarm::expand_launcher("nice -n 10", "", {"./w", "a b"});
  const std::vector<std::string> expected = {"nice", "-n", "10", "./w", "a b"};
  EXPECT_EQ(argv, expected);
}

TEST(ExpandLauncher, RejectsEmptyTemplateAndEmbeddedCmd) {
  EXPECT_THROW(swarm::expand_launcher("", "", {"w"}), std::invalid_argument);
  EXPECT_THROW(swarm::expand_launcher("   ", "", {"w"}), std::invalid_argument);
  EXPECT_THROW(swarm::expand_launcher("sh -c pre{cmd}", "", {"w"}),
               std::invalid_argument);
}

TEST(RemoteBackend, ValidatesTemplateAndHostsUpFront) {
  swarm::RemoteBackendOptions no_hosts;
  no_hosts.launcher = "ssh {host} {cmd}";
  EXPECT_THROW(swarm::RemoteProcessBackend{no_hosts}, std::invalid_argument);

  swarm::RemoteBackendOptions empty_host;
  empty_host.launcher = "ssh {host} {cmd}";
  empty_host.hosts = {"a", ""};
  EXPECT_THROW(swarm::RemoteProcessBackend{empty_host}, std::invalid_argument);

  swarm::RemoteBackendOptions bad_template;
  bad_template.launcher = "sh -c x{cmd}y";
  EXPECT_THROW(swarm::RemoteProcessBackend{bad_template}, std::invalid_argument);

  swarm::RemoteBackendOptions no_host_needed;
  no_host_needed.launcher = "sh -c {cmd}";
  EXPECT_NO_THROW(swarm::RemoteProcessBackend{no_host_needed});
}

TEST(RemoteBackend, RoundRobinsHostsAcrossStarts) {
  const std::string dir = testing::TempDir() + "swarm_remote_rr";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // `echo {host} ...` with no {cmd}: the worker argv rides along as echo
  // arguments, and the redirected stdout records which host each start drew.
  swarm::RemoteBackendOptions options;
  options.launcher = "echo {host}";
  options.hosts = {"alpha", "beta"};
  swarm::RemoteProcessBackend backend(options);
  EXPECT_EQ(backend.next_host(), "alpha");

  std::vector<swarm::WorkerId> ids;
  for (int i = 0; i < 3; ++i) {
    swarm::WorkerSpec spec;
    spec.argv = {"worker", std::to_string(i)};
    spec.stdout_path = dir + "/w" + std::to_string(i) + ".out";
    ids.push_back(backend.start(spec));
  }
  for (const auto id : ids) EXPECT_TRUE(wait_for_exit(backend, id).success());
  EXPECT_EQ(slurp(dir + "/w0.out"), "alpha worker 0\n");
  EXPECT_EQ(slurp(dir + "/w1.out"), "beta worker 1\n");
  EXPECT_EQ(slurp(dir + "/w2.out"), "alpha worker 2\n");  // wrapped around
  EXPECT_EQ(backend.next_host(), "beta");
  std::filesystem::remove_all(dir);
}

TEST(RemoteBackend, LocalShellLauncherPropagatesExitCodes) {
  swarm::RemoteBackendOptions options;
  options.launcher = "sh -c {cmd}";
  swarm::RemoteProcessBackend backend(options);

  swarm::WorkerSpec ok;
  ok.argv = {"/bin/sh", "-c", "exit 0"};
  EXPECT_TRUE(wait_for_exit(backend, backend.start(ok)).success());

  swarm::WorkerSpec failing;
  failing.argv = {"/bin/sh", "-c", "exit 7"};
  const auto exit = wait_for_exit(backend, backend.start(failing));
  EXPECT_FALSE(exit.signaled);
  EXPECT_EQ(exit.value, 7);
}

TEST(RemoteBackend, QuotedArgumentsSurviveTheShellLayer) {
  const std::string dir = testing::TempDir() + "swarm_remote_quote";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  swarm::RemoteBackendOptions options;
  options.launcher = "sh -c {cmd}";
  swarm::RemoteProcessBackend backend(options);
  swarm::WorkerSpec spec;
  // Adversarial argv: spaces, dollar, backticks, a single quote.  printf
  // must receive them as ONE argument, untouched by the launcher shell.
  spec.argv = {"printf", "%s", "a b $HOME `ls` it's"};
  spec.stdout_path = dir + "/quoted.out";
  EXPECT_TRUE(wait_for_exit(backend, backend.start(spec)).success());
  EXPECT_EQ(slurp(dir + "/quoted.out"), "a b $HOME `ls` it's");
  std::filesystem::remove_all(dir);
}

TEST(RemoteBackend, StopKillsTheLauncherProcess) {
  swarm::RemoteBackendOptions options;
  options.launcher = "sh -c {cmd}";
  swarm::RemoteProcessBackend backend(options);
  swarm::WorkerSpec spec;
  spec.argv = {"/bin/sh", "-c", "sleep 30"};
  const auto id = backend.start(spec);
  EXPECT_FALSE(backend.poll(id).has_value());
  backend.stop(id);
  const auto exit = wait_for_exit(backend, id);
  EXPECT_TRUE(exit.signaled);
  EXPECT_EQ(exit.value, SIGKILL);
}

TEST(LocalBackend, PollRetriesInterruptedWaits) {
  swarm::LocalProcessBackend backend;
  int interruptions = 0;
  backend.set_wait_fn_for_test([&interruptions](int pid, int* status, int flags) {
    // The first two waits land as if a stray signal interrupted them; the
    // old code translated ANY failure into a phantom SIGKILL death here.
    if (interruptions < 2) {
      ++interruptions;
      errno = EINTR;
      return -1;
    }
    return static_cast<int>(::waitpid(pid, status, flags));
  });

  swarm::WorkerSpec spec;
  spec.argv = {"/bin/sh", "-c", "exit 0"};
  const auto id = backend.start(spec);
  const auto exit = wait_for_exit(backend, id);
  EXPECT_GE(interruptions, 2);
  // The child was alive and well the whole time: its real, clean exit is
  // reported — no retry budget burned on a phantom crash.
  EXPECT_FALSE(exit.signaled);
  EXPECT_TRUE(exit.success());
}

TEST(LocalBackend, EchildStaysALoudCrash) {
  swarm::LocalProcessBackend backend;
  backend.set_wait_fn_for_test([](int, int*, int) {
    errno = ECHILD;  // the child vanished outside our control
    return -1;
  });
  swarm::WorkerSpec spec;
  spec.argv = {"/bin/sh", "-c", "exit 0"};
  const auto id = backend.start(spec);
  const auto exit = backend.poll(id);
  ASSERT_TRUE(exit.has_value());
  EXPECT_TRUE(exit->signaled);
  EXPECT_EQ(exit->value, SIGKILL);
  // The real child is a zombie now (poll reported it without reaping); it is
  // collected when this test process exits, like any unwaited child.
}
