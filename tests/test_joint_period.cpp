// Tests for joint period optimization on a fixed assignment: exact corner
// feasibility, the three objective modes, and agreement with grid search.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/joint_period.h"
#include "core/scp_warm.h"
#include "rt/partition.h"
#include "rt/task.h"

namespace core = hydra::core;
namespace rt = hydra::rt;

namespace {

/// Two security tasks sharing core 0 with one RT task; coupled constraints.
core::Instance coupled_instance() {
  core::Instance inst;
  inst.num_cores = 1;
  inst.rt_tasks = {rt::make_rt_task("r", 2.0, 10.0)};  // 20 % load
  inst.security_tasks = {rt::make_security_task("hi", 100.0, 500.0, 5000.0),
                         rt::make_security_task("lo", 100.0, 600.0, 6000.0)};
  return inst;
}

rt::Partition trivial_partition(const core::Instance& inst) {
  rt::Partition p;
  p.num_cores = inst.num_cores;
  p.core_of.assign(inst.rt_tasks.size(), 0);
  return p;
}

}  // namespace

TEST(JointPeriod, EmptySecuritySetTriviallyFeasible) {
  core::Instance inst;
  inst.num_cores = 1;
  inst.rt_tasks = {rt::make_rt_task("r", 1.0, 10.0)};
  const auto r = core::optimize_joint_periods(inst, trivial_partition(inst), {});
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.periods.empty());
}

TEST(JointPeriod, InfeasibleAtCornerDetected) {
  core::Instance inst;
  inst.num_cores = 1;
  inst.rt_tasks = {rt::make_rt_task("r", 9.0, 10.0)};  // 90 % RT load
  inst.security_tasks = {rt::make_security_task("s", 500.0, 1000.0, 2000.0)};
  const auto r = core::optimize_joint_periods(inst, trivial_partition(inst), {0});
  EXPECT_FALSE(r.feasible);
}

TEST(JointPeriod, ResultSatisfiesConstraintsAllModes) {
  const auto inst = coupled_instance();
  const auto part = trivial_partition(inst);
  for (const auto mode : {core::JointObjective::kSumSurrogate, core::JointObjective::kLogUtility,
                          core::JointObjective::kSignomialScp}) {
    core::JointPeriodOptions opts;
    opts.objective = mode;
    const auto r = core::optimize_joint_periods(inst, part, {0, 0}, opts);
    ASSERT_TRUE(r.feasible);
    ASSERT_EQ(r.periods.size(), 2u);
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_GE(r.periods[s], inst.security_tasks[s].period_des - 1e-6);
      EXPECT_LE(r.periods[s], inst.security_tasks[s].period_max + 1e-6);
    }
    // Re-check Eq. (6) by hand for the low-priority task (index 1):
    // C + (1 + T1/10)·2 + (1 + T1/T0)·100 <= T1.
    const double t0 = r.periods[0], t1 = r.periods[1];
    const double demand = 100.0 + (1.0 + t1 / 10.0) * 2.0 + (1.0 + t1 / t0) * 100.0;
    EXPECT_LE(demand, t1 + 1e-4) << "mode " << static_cast<int>(mode);
  }
}

TEST(JointPeriod, ScpAtLeastAsGoodAsRigorousModes) {
  const auto inst = coupled_instance();
  const auto part = trivial_partition(inst);
  double scp_value = 0.0, surrogate_value = 0.0, log_value = 0.0;
  {
    core::JointPeriodOptions o;
    o.objective = core::JointObjective::kSignomialScp;
    scp_value = core::optimize_joint_periods(inst, part, {0, 0}, o).cumulative_tightness;
  }
  {
    core::JointPeriodOptions o;
    o.objective = core::JointObjective::kSumSurrogate;
    surrogate_value = core::optimize_joint_periods(inst, part, {0, 0}, o).cumulative_tightness;
  }
  {
    core::JointPeriodOptions o;
    o.objective = core::JointObjective::kLogUtility;
    log_value = core::optimize_joint_periods(inst, part, {0, 0}, o).cumulative_tightness;
  }
  // SCP directly maximizes Σ ω·η and is seeded with the surrogate solution.
  EXPECT_GE(scp_value, surrogate_value - 1e-6);
  EXPECT_GE(scp_value, log_value - 1e-6);
}

TEST(JointPeriod, MatchesGridSearchOnCoupledPair) {
  const auto inst = coupled_instance();
  const auto part = trivial_partition(inst);
  core::JointPeriodOptions opts;
  opts.objective = core::JointObjective::kSignomialScp;
  const auto r = core::optimize_joint_periods(inst, part, {0, 0}, opts);
  ASSERT_TRUE(r.feasible);

  // Dense grid over (T0, T1).
  const auto& s0 = inst.security_tasks[0];
  const auto& s1 = inst.security_tasks[1];
  double best = 0.0;
  const int steps = 300;
  for (int i = 0; i <= steps; ++i) {
    const double t0 = s0.period_des + (s0.period_max - s0.period_des) * i / steps;
    // Constraint for s0 (hp): 100 + (1 + t0/10)·2 <= t0  →  0.8·t0 >= 102.
    if (100.0 + (1.0 + t0 / 10.0) * 2.0 > t0 + 1e-9) continue;
    for (int j = 0; j <= steps; ++j) {
      const double t1 = s1.period_des + (s1.period_max - s1.period_des) * j / steps;
      const double demand = 100.0 + (1.0 + t1 / 10.0) * 2.0 + (1.0 + t1 / t0) * 100.0;
      if (demand > t1 + 1e-9) continue;
      best = std::max(best, s0.weight * s0.period_des / t0 + s1.weight * s1.period_des / t1);
    }
  }
  EXPECT_GE(r.cumulative_tightness, best - 5e-3);
}

TEST(JointPeriod, SeparateCoresDecouple) {
  // On different cores with no RT tasks, each period collapses to Tdes.
  core::Instance inst;
  inst.num_cores = 2;
  inst.security_tasks = {rt::make_security_task("a", 50.0, 500.0, 5000.0),
                         rt::make_security_task("b", 50.0, 700.0, 7000.0)};
  rt::Partition part;
  part.num_cores = 2;
  const auto r = core::optimize_joint_periods(inst, part, {0, 1});
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.periods[0], 500.0, 1.0);
  EXPECT_NEAR(r.periods[1], 700.0, 1.0);
  EXPECT_NEAR(r.cumulative_tightness, 2.0, 1e-3);
}

TEST(JointPeriod, WeightsSteerTheTradeoff) {
  // Same pair, but now the LOW-priority task carries a huge weight: the
  // optimizer should sacrifice the high-priority task's tightness.
  core::Instance inst = coupled_instance();
  inst.security_tasks[1].weight = 50.0;
  const auto part = trivial_partition(inst);
  core::JointPeriodOptions opts;
  opts.objective = core::JointObjective::kSignomialScp;
  const auto weighted = core::optimize_joint_periods(inst, part, {0, 0}, opts);

  core::Instance plain = coupled_instance();
  const auto unweighted = core::optimize_joint_periods(plain, part, {0, 0}, opts);
  ASSERT_TRUE(weighted.feasible);
  ASSERT_TRUE(unweighted.feasible);
  const double eta1_weighted = inst.security_tasks[1].period_des / weighted.periods[1];
  const double eta1_unweighted = plain.security_tasks[1].period_des / unweighted.periods[1];
  EXPECT_GE(eta1_weighted, eta1_unweighted - 1e-6);
}

TEST(JointPeriod, BlockingTermTightensTheProblem) {
  const auto inst = coupled_instance();
  const auto part = trivial_partition(inst);
  core::JointPeriodOptions plain;
  plain.objective = core::JointObjective::kSignomialScp;
  core::JointPeriodOptions blocked = plain;
  blocked.blocking = 50.0;
  const auto without = core::optimize_joint_periods(inst, part, {0, 0}, plain);
  const auto with = core::optimize_joint_periods(inst, part, {0, 0}, blocked);
  ASSERT_TRUE(without.feasible);
  ASSERT_TRUE(with.feasible);
  EXPECT_LE(with.cumulative_tightness, without.cumulative_tightness + 1e-9);
}

TEST(JointPeriod, HugeBlockingMakesInfeasible) {
  const auto inst = coupled_instance();
  const auto part = trivial_partition(inst);
  core::JointPeriodOptions opts;
  opts.blocking = 1e6;  // larger than any Tmax
  const auto r = core::optimize_joint_periods(inst, part, {0, 0}, opts);
  EXPECT_FALSE(r.feasible);
}

TEST(JointPeriodWarm, ScopeIsConsultedAndResultUnchangedOnTies) {
  // With an installed warm-start scope, the kSignomialScp path must consult
  // source() on every solve, report the converged periods through sink(), and
  // — because a same-basin warm point ties with the cold solve — return
  // bit-identical periods to an unhooked run.
  const auto inst = coupled_instance();
  const auto part = trivial_partition(inst);
  core::JointPeriodOptions opts;
  opts.objective = core::JointObjective::kSignomialScp;
  const auto cold = core::optimize_joint_periods(inst, part, {0, 0}, opts);
  ASSERT_TRUE(cold.feasible);

  std::size_t source_calls = 0;
  std::vector<std::vector<double>> sink_values;
  core::ScpWarmStartHooks hooks;
  hooks.source = [&](std::size_t num_periods) {
    ++source_calls;
    EXPECT_EQ(num_periods, 2u);
    return std::vector<std::vector<double>>{cold.periods};
  };
  hooks.sink = [&](const std::vector<double>& periods) {
    sink_values.push_back(periods);
  };
  core::ScpWarmStartScope scope(std::move(hooks));
  const auto warm = core::optimize_joint_periods(inst, part, {0, 0}, opts);
  ASSERT_TRUE(warm.feasible);
  EXPECT_GE(source_calls, 1u);
  ASSERT_FALSE(sink_values.empty());
  EXPECT_EQ(warm.periods, cold.periods);  // exact: the tie goes to cold
  EXPECT_EQ(sink_values.back(), warm.periods);
}

TEST(JointPeriodWarm, InnerScopeShadowsOuterHooks) {
  // Installing an empty-hooks scope inside another scope must fully shadow
  // it — this is how the sweep memo's canonical solves stay cold instead of
  // re-entering the memo.
  const auto inst = coupled_instance();
  const auto part = trivial_partition(inst);
  core::JointPeriodOptions opts;
  opts.objective = core::JointObjective::kSignomialScp;

  std::size_t outer_calls = 0;
  core::ScpWarmStartHooks outer;
  outer.source = [&](std::size_t) {
    ++outer_calls;
    return std::vector<std::vector<double>>{};
  };
  core::ScpWarmStartScope outer_scope(std::move(outer));
  {
    core::ScpWarmStartScope inner_scope{core::ScpWarmStartHooks{}};
    const auto r = core::optimize_joint_periods(inst, part, {0, 0}, opts);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(outer_calls, 0u);  // fully shadowed
  }
  // Scope restored on destruction: the outer hooks are live again.
  const auto r = core::optimize_joint_periods(inst, part, {0, 0}, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(outer_calls, 1u);
}

TEST(JointPeriod, AssignmentShapeChecked) {
  const auto inst = coupled_instance();
  const auto part = trivial_partition(inst);
  EXPECT_THROW(core::optimize_joint_periods(inst, part, {0}), std::invalid_argument);
  EXPECT_THROW(core::optimize_joint_periods(inst, part, {0, 7}), std::invalid_argument);
}
