#include "rt/priority.h"

#include <algorithm>
#include <numeric>

#include "util/contracts.h"

namespace hydra::rt {

std::vector<std::size_t> rm_priority_order(const std::vector<RtTask>& tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].period < tasks[b].period;
  });
  return order;
}

std::vector<std::size_t> security_priority_order(const std::vector<SecurityTask>& tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].period_max < tasks[b].period_max;
  });
  return order;
}

std::vector<std::size_t> rank_of(const std::vector<std::size_t>& order) {
  std::vector<std::size_t> rank(order.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;
  return rank;
}

std::vector<std::size_t> resolve_security_order(
    const std::vector<SecurityTask>& tasks,
    const std::optional<std::vector<std::size_t>>& override_order) {
  if (!override_order.has_value()) return security_priority_order(tasks);
  HYDRA_REQUIRE(override_order->size() == tasks.size(),
                "priority order must cover every security task");
  std::vector<bool> seen(tasks.size(), false);
  for (const std::size_t i : *override_order) {
    HYDRA_REQUIRE(i < tasks.size() && !seen[i], "priority order must be a permutation");
    seen[i] = true;
  }
  return *override_order;
}

std::vector<double> priority_weights(const std::vector<SecurityTask>& tasks) {
  const auto rank = rank_of(security_priority_order(tasks));
  std::vector<double> w(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    w[i] = static_cast<double>(tasks.size() - rank[i]);
  }
  return w;
}

}  // namespace hydra::rt
