// Adversarial controller-stress suite over tests/corpus_controller/: bursty
// mode-thrash pressure, N-level ladder invariants, attack-triggered boosting,
// and multi-policy sweep determinism.
//
// Pinned invariants (ISSUE 10):
//   * mode-table ladders are strictly decreasing with exact anchor endpoints,
//     and the simulator's tick ladders inherit that;
//   * hysteresis/nlevel moves one rung at a time;
//   * thrash attempts are rate-limited by the dwell and the denials are
//     COUNTED (ModeStats::denied_dwell/denied_budget), never silent;
//   * never-switch is job-for-job identical to the static engine on the
//     minimum-mode task list, attacks injected or not;
//   * attack injection never perturbs a detection-ignoring policy's trace;
//   * boost never exceeds the analysis-feasible fastest level, and on the
//     loaded boost_pressure workload it measurably reduces detection latency
//     vs hysteresis (the Contego attack-response story, executed);
//   * a multi-policy sweep is byte-identical across --jobs and across a
//     2-shard merge.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/contego.h"
#include "core/mode_table.h"
#include "exp/merge.h"
#include "exp/metrics.h"
#include "exp/sinks.h"
#include "exp/sweep.h"
#include "io/taskset_io.h"
#include "sim/attack.h"
#include "sim/engine.h"
#include "sim/mode_switch.h"
#include "stats/summary.h"

namespace core = hydra::core;
namespace sim = hydra::sim;
namespace hexp = hydra::exp;
using hydra::util::SimTime;

namespace {

constexpr SimTime kMs = hydra::util::kTicksPerMilli;

const std::string kStressCorpus =
    std::string(HYDRA_SOURCE_DIR) + "/tests/corpus_controller";

struct LoadedWorkload {
  core::Instance instance;
  core::Allocation allocation;
};

LoadedWorkload load_workload(const std::string& name) {
  LoadedWorkload w;
  w.instance = hydra::io::load_instance(kStressCorpus + "/" + name);
  w.allocation = core::ContegoAllocator().allocate(w.instance);
  EXPECT_TRUE(w.allocation.feasible) << name;
  return w;
}

const std::vector<std::string> kWorkloads = {
    "bursty_thrash_2core.txt", "boost_pressure_2core.txt",
    "ladder_midband_2core.txt"};

}  // namespace

// ---------------------------------------------------------------------------
// N-level ladder invariants
// ---------------------------------------------------------------------------

TEST(NLevelLadder, TableLevelsAreMonotoneWithExactAnchors) {
  for (const auto& name : kWorkloads) {
    const auto w = load_workload(name);
    for (const std::size_t levels : {2u, 3u, 5u, 8u}) {
      const auto table = core::build_mode_table(w.instance, w.allocation, levels);
      for (std::size_t s = 0; s < table.modes.size(); ++s) {
        const auto& mode = table.modes[s];
        ASSERT_FALSE(mode.levels.empty()) << name;
        // Exact anchors: the analysis certified Tmax and the committed
        // period; interpolation noise on them would be a different table.
        EXPECT_EQ(mode.levels.front(), mode.min_period) << name;
        if (table.has_headroom(s)) {
          EXPECT_EQ(mode.num_levels(), levels) << name;
          EXPECT_EQ(mode.levels.back(), mode.adapted_period) << name;
          for (std::size_t k = 1; k < mode.levels.size(); ++k) {
            EXPECT_LT(mode.levels[k], mode.levels[k - 1])
                << name << " monitor " << s << " level " << k;
          }
        } else {
          EXPECT_EQ(mode.num_levels(), 1u) << name;
        }
      }
    }
  }
}

TEST(NLevelLadder, SimTaskLaddersInheritMonotonicity) {
  for (const auto& name : kWorkloads) {
    const auto w = load_workload(name);
    const auto table = core::build_mode_table(w.instance, w.allocation, 6);
    const auto tasks = sim::build_mode_tasks(w.instance, w.allocation, table);
    for (const auto& mt : tasks) {
      if (!mt.switchable()) continue;
      EXPECT_EQ(mt.level_period(0), mt.task.period);
      EXPECT_EQ(mt.level_period(mt.num_levels() - 1), mt.adapted_period);
      for (std::size_t k = 1; k < mt.num_levels(); ++k) {
        EXPECT_LT(mt.level_period(k), mt.level_period(k - 1)) << mt.task.name;
      }
    }
  }
}

TEST(NLevelLadder, NlevelPolicyStepsOneRungAtATime) {
  const auto w = load_workload("ladder_midband_2core.txt");
  const auto table = core::build_mode_table(w.instance, w.allocation, 4);
  const auto tasks = sim::build_mode_tasks(w.instance, w.allocation, table);

  sim::ModeSwitchOptions opts;
  opts.horizon = 120u * 1000u * kMs;
  opts.controller.policy = "hysteresis/nlevel";
  opts.controller.num_levels = 4;
  const auto run = sim::simulate_mode_switching(tasks, opts);

  // Abundant slack: the ladder is actually climbed, one rung per event.
  EXPECT_GT(run.stats.total_switches(), 0u);
  bool reached_top = false;
  for (const auto& ev : run.stats.events) {
    const std::size_t step = ev.to_level > ev.from_level
                                 ? ev.to_level - ev.from_level
                                 : ev.from_level - ev.to_level;
    EXPECT_EQ(step, 1u) << "nlevel must move one level at a time";
    EXPECT_LT(ev.to_level, tasks[ev.task].num_levels());
    if (ev.to_level == tasks[ev.task].num_levels() - 1) reached_top = true;
  }
  EXPECT_TRUE(reached_top) << "midband workload should reach the fastest level";
}

// ---------------------------------------------------------------------------
// Thrash pressure: rate limiting with COUNTED denials
// ---------------------------------------------------------------------------

TEST(ControllerStress, BurstyThrashIsRateLimitedAndDenialsAreCounted) {
  const auto w = load_workload("bursty_thrash_2core.txt");
  const auto table = core::build_mode_table(w.instance, w.allocation);
  const auto tasks = sim::build_mode_tasks(w.instance, w.allocation, table);

  sim::ModeSwitchOptions opts;
  opts.horizon = 200u * 1000u * kMs;
  // A window shorter than the 800 ms burst period sees the square wave raw:
  // the observed idle fraction crosses the whole hysteresis band every phase.
  opts.controller.slack_window = 400 * kMs;
  // A dwell longer than the default (the min-mode period) guarantees the
  // thrash pressure actually collides with the rate limit: at level 0 the
  // auto dwell equals the release spacing, so denials there are impossible
  // by construction.
  opts.controller.min_dwell = 4000 * kMs;
  const auto run = sim::simulate_mode_switching(tasks, opts);

  EXPECT_EQ(run.trace.deadline_misses(), 0u);
  EXPECT_GT(run.stats.total_switches(), 0u);
  // The thrash attempts the dwell refused are visible, not silent — the
  // regression this suite pins (decide_mode used to drop them on the floor).
  EXPECT_GT(run.stats.total_denied_dwell(), 0u);

  // Committed switches respect the dwell.
  std::vector<SimTime> last_switch(tasks.size(), 0);
  std::vector<bool> seen(tasks.size(), false);
  for (const auto& ev : run.stats.events) {
    if (seen[ev.task]) {
      EXPECT_GE(ev.at - last_switch[ev.task], opts.controller.min_dwell)
          << "dwell violated for " << tasks[ev.task].task.name;
    }
    last_switch[ev.task] = ev.at;
    seen[ev.task] = true;
  }
}

TEST(ControllerStress, ExhaustedBudgetDenialsAreCounted) {
  const auto w = load_workload("bursty_thrash_2core.txt");
  const auto table = core::build_mode_table(w.instance, w.allocation);
  const auto tasks = sim::build_mode_tasks(w.instance, w.allocation, table);

  sim::ModeSwitchOptions opts;
  opts.horizon = 200u * 1000u * kMs;
  opts.controller.slack_window = 400 * kMs;
  opts.controller.switch_budget = 1;
  const auto run = sim::simulate_mode_switching(tasks, opts);

  // Each switchable monitor commits its single switch, then every further
  // attempt lands in denied_budget.
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    if (!tasks[ti].switchable()) continue;
    EXPECT_LE(run.stats.switches[ti], 1u);
  }
  EXPECT_GT(run.stats.total_denied_budget(), 0u);
}

// ---------------------------------------------------------------------------
// never-switch ≡ static minimum mode, with and without attack injection
// ---------------------------------------------------------------------------

TEST(ControllerStress, NeverSwitchMatchesStaticEngineJobForJobUnderAttack) {
  const auto w = load_workload("bursty_thrash_2core.txt");
  const auto table = core::build_mode_table(w.instance, w.allocation, 4);
  const auto tasks = sim::build_mode_tasks(w.instance, w.allocation, table);

  sim::ModeSwitchOptions mopts;
  mopts.horizon = 120u * 1000u * kMs;
  mopts.controller.policy = "never-switch";
  mopts.controller.num_levels = 4;
  for (SimTime at = 5000 * kMs; at < mopts.horizon; at += 9000 * kMs) {
    mopts.attack_times.push_back(at);
  }
  const auto adaptive = sim::simulate_mode_switching(tasks, mopts);
  EXPECT_EQ(adaptive.stats.total_switches(), 0u);
  // Detections are delivered (and counted) — the policy just ignores them.
  EXPECT_GT(adaptive.stats.total_detections(), 0u);

  std::vector<sim::SimTask> min_mode;
  for (const auto& mt : tasks) min_mode.push_back(mt.task);
  sim::SimOptions sopts;
  sopts.horizon = mopts.horizon;
  const auto static_run = sim::simulate(min_mode, sopts);

  ASSERT_EQ(adaptive.trace.jobs.size(), static_run.jobs.size());
  for (std::size_t t = 0; t < static_run.jobs.size(); ++t) {
    ASSERT_EQ(adaptive.trace.jobs[t].size(), static_run.jobs[t].size()) << t;
    for (std::size_t k = 0; k < static_run.jobs[t].size(); ++k) {
      EXPECT_EQ(adaptive.trace.jobs[t][k].release, static_run.jobs[t][k].release);
      EXPECT_EQ(adaptive.trace.jobs[t][k].start, static_run.jobs[t][k].start);
      EXPECT_EQ(adaptive.trace.jobs[t][k].completion,
                static_run.jobs[t][k].completion);
    }
  }
  EXPECT_EQ(adaptive.trace.core_busy, static_run.core_busy);
}

TEST(ControllerStress, AttackInjectionNeverPerturbsDetectionIgnoringPolicies) {
  const auto w = load_workload("ladder_midband_2core.txt");
  const auto table = core::build_mode_table(w.instance, w.allocation);
  const auto tasks = sim::build_mode_tasks(w.instance, w.allocation, table);

  sim::ModeSwitchOptions plain;
  plain.horizon = 120u * 1000u * kMs;
  auto injected = plain;
  for (SimTime at = 3000 * kMs; at < plain.horizon; at += 7000 * kMs) {
    injected.attack_times.push_back(at);
  }
  const auto a = sim::simulate_mode_switching(tasks, plain);
  const auto b = sim::simulate_mode_switching(tasks, injected);

  EXPECT_GT(b.stats.total_detections(), 0u);
  EXPECT_EQ(a.stats.switches, b.stats.switches);
  EXPECT_EQ(a.stats.min_residency, b.stats.min_residency);
  EXPECT_EQ(a.stats.adapted_residency, b.stats.adapted_residency);
  EXPECT_EQ(a.trace.core_busy, b.trace.core_busy);
  ASSERT_EQ(a.stats.events.size(), b.stats.events.size());
  for (std::size_t i = 0; i < a.stats.events.size(); ++i) {
    EXPECT_EQ(a.stats.events[i].at, b.stats.events[i].at);
    EXPECT_EQ(a.stats.events[i].to_level, b.stats.events[i].to_level);
  }
}

// ---------------------------------------------------------------------------
// Attack-triggered boosting
// ---------------------------------------------------------------------------

TEST(BoostPolicy, BoostsToTopOnDetectionAndNeverExceedsIt) {
  const auto w = load_workload("boost_pressure_2core.txt");
  const auto table = core::build_mode_table(w.instance, w.allocation, 3);
  const auto tasks = sim::build_mode_tasks(w.instance, w.allocation, table);

  sim::ModeSwitchOptions opts;
  opts.horizon = 150u * 1000u * kMs;
  opts.controller.policy = "boost";
  opts.controller.num_levels = 3;
  for (SimTime at = 10000 * kMs; at < opts.horizon; at += 20000 * kMs) {
    opts.attack_times.push_back(at);
  }
  const auto run = sim::simulate_mode_switching(tasks, opts);

  EXPECT_EQ(run.trace.deadline_misses(), 0u);
  EXPECT_GT(run.stats.total_detections(), 0u);
  EXPECT_GT(run.stats.total_switches(), 0u);
  bool boosted_to_top = false;
  for (const auto& ev : run.stats.events) {
    // The engine HYDRA_REQUIREs desired <= top on every decision; the event
    // log must agree.
    EXPECT_LT(ev.to_level, tasks[ev.task].num_levels()) << tasks[ev.task].task.name;
    if (ev.to_level == tasks[ev.task].num_levels() - 1) boosted_to_top = true;
  }
  // The cores are too loaded for slack-driven tightening (that is what makes
  // this workload adversarial), so any top-level residency is attack-driven.
  EXPECT_TRUE(boosted_to_top);
}

TEST(BoostPolicy, BoostMeasurablyBeatsHysteresisOnLoadedCores) {
  // THE acceptance pin: on boost_pressure the idle fraction never reaches the
  // tighten threshold, so hysteresis detects at the sluggish Tmax rate while
  // boost reacts to each detection event and catches subsequent attacks at
  // the committed fast rate.
  const auto w = load_workload("boost_pressure_2core.txt");
  sim::DetectionConfig det;
  det.horizon = 150u * 1000u * kMs;
  det.trials = 40;
  det.seed = 17;

  sim::ModeControllerConfig hysteresis;
  hysteresis.policy = "hysteresis";
  const auto base =
      sim::measure_detection_times_adaptive(w.instance, w.allocation, det, hysteresis);

  sim::ModeControllerConfig boost;
  boost.policy = "boost";
  const auto boosted =
      sim::measure_detection_times_adaptive(w.instance, w.allocation, det, boost);

  ASSERT_EQ(base.detection.detection_ms.size(), det.trials);
  ASSERT_EQ(boosted.detection.detection_ms.size(), det.trials);
  // Slack never justifies tightening here...
  EXPECT_EQ(base.modes.total_switches(), 0u);
  // ...but detections do.
  EXPECT_GT(boosted.modes.total_detections(), 0u);
  EXPECT_GT(boosted.modes.total_switches(), 0u);

  const double base_mean = hydra::stats::summarize(base.detection.detection_ms).mean;
  const double boost_mean =
      hydra::stats::summarize(boosted.detection.detection_ms).mean;
  EXPECT_LT(boost_mean, 0.8 * base_mean)
      << "boost should measurably reduce detection latency (hysteresis "
      << base_mean << " ms vs boost " << boost_mean << " ms)";
}

// ---------------------------------------------------------------------------
// Multi-policy sweep determinism: --jobs and shard/merge byte-identity
// ---------------------------------------------------------------------------

namespace {

std::vector<hexp::RowMetric> multi_policy_metrics() {
  std::vector<hexp::RowMetric> metrics;
  const std::vector<std::string> policies = {"hysteresis", "boost", "never-switch"};
  for (std::size_t i = 0; i < policies.size(); ++i) {
    hexp::AdaptiveMetricsConfig family;
    family.detection.horizon = 60u * 1000u * kMs;
    family.detection.trials = 10;
    family.detection.seed = 5;
    family.controller.policy = policies[i];
    family.controller.num_levels = 3;
    family.name_suffix = "/" + policies[i];
    family.include_static = i == 0;
    family.include_min_mode = i == 0;
    family.include_global = false;
    auto fam = hexp::adaptive_detection_metrics(family);
    metrics.insert(metrics.end(), std::make_move_iterator(fam.begin()),
                   std::make_move_iterator(fam.end()));
  }
  return metrics;
}

hexp::SweepSpec multi_policy_spec() {
  hexp::SweepSpec spec;
  spec.schemes = {"contego"};
  spec.add_corpus_point(kStressCorpus, "controller-stress");
  spec.metrics = multi_policy_metrics();
  return spec;
}

std::string run_rows(hexp::SweepSpec spec) {
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  hexp::Sweep(std::move(spec)).run({&sink});
  return os.str();
}

}  // namespace

TEST(MultiPolicySweep, RowStreamIsIndependentOfJobCount) {
  auto serial = multi_policy_spec();
  serial.jobs = 1;
  auto parallel = multi_policy_spec();
  parallel.jobs = 4;
  const std::string serial_rows = run_rows(std::move(serial));
  EXPECT_FALSE(serial_rows.empty());
  EXPECT_EQ(serial_rows, run_rows(std::move(parallel)));
  // Every policy family actually landed in the rows.
  EXPECT_NE(serial_rows.find("adaptive_mean_detection_ms/hysteresis"),
            std::string::npos);
  EXPECT_NE(serial_rows.find("adaptive_mean_detection_ms/boost"), std::string::npos);
  EXPECT_NE(serial_rows.find("adaptive_denied_dwell/never-switch"),
            std::string::npos);
  // The policy-free baselines appear once, unsuffixed.
  EXPECT_NE(serial_rows.find("\"min_mode_mean_detection_ms\""), std::string::npos);
  EXPECT_EQ(serial_rows.find("min_mode_mean_detection_ms/"), std::string::npos);
}

TEST(MultiPolicySweep, TwoShardMergeMatchesSingleProcessRun) {
  const std::string unsharded = run_rows(multi_policy_spec());

  std::vector<std::string> paths;
  for (std::size_t s = 0; s < 2; ++s) {
    auto spec = multi_policy_spec();
    spec.shard_index = s;
    spec.shard_count = 2;
    spec.jobs = 1 + s;
    const hexp::Sweep sweep(std::move(spec));
    const auto path = ::testing::TempDir() + "hydra_ctl_shard_" +
                      std::to_string(s) + "of2.jsonl";
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << hexp::format_shard_header(sweep.shard_header()) << "\n";
    hexp::JsonlSink sink(out);
    sweep.run({&sink});
    paths.push_back(path);
  }

  const auto merged = hexp::merge_checkpoints(paths);
  EXPECT_TRUE(merged.complete) << merged.incomplete_reason;
  std::ostringstream merged_rows;
  hexp::write_merged(merged, merged_rows);
  EXPECT_EQ(merged_rows.str(), unsharded);
  for (const auto& path : paths) std::remove(path.c_str());
}
