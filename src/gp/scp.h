// Signomial extension: maximizing a posynomial via sequential convex
// programming (monomial condensation).
//
// The paper's joint objective — maximize Σ ωs·Tdes_s/Ts — is a posynomial to
// *maximize*, which is not a GP (see DESIGN.md §5).  The standard remedy
// (Boyd et al. [28], §9 "Signomial programming") replaces the posynomial
// f(x) = Σ u_k(x) at the current iterate x̄ by its arithmetic-geometric-mean
// monomial lower bound
//
//     f(x) ≥ f̂(x) = Π ( u_k(x) / α_k )^{α_k},   α_k = u_k(x̄)/f(x̄),
//
// which is tight at x̄.  Maximizing the monomial f̂ is a GP (minimize f̂⁻¹),
// and iterating to a fixed point yields a KKT point of the original signomial
// program.  Multi-start over caller-supplied seeds guards against poor local
// optima; tests validate against dense grid search on small instances.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gp/problem.h"
#include "gp/solver.h"

namespace hydra::gp {

struct ScpOptions {
  SolveOptions gp;          ///< options for each inner GP solve
  /// Registry name of the backend solving each inner GP ("" resolves through
  /// the innermost GpBackendScope, then kDefaultGpBackend).  Every backend
  /// serves SCP: the condensation loop only needs plain-GP solves.
  std::string backend;
  int max_rounds = 25;      ///< condensation iterations per start point
  double rel_tol = 1e-6;    ///< stop when objective improves less than this

  /// Test/diagnostic hook: invoked after every condensation round with the
  /// 1-based round number, the refined iterate, and its true (uncondensed)
  /// objective value.  Rounds are not guaranteed monotone when the inner
  /// solves run loose tolerances — the regression tests observe that here.
  std::function<void(int round, const std::vector<double>& x, double objective)> on_round;
};

struct ScpResult {
  bool feasible = false;
  std::vector<double> x;    ///< best point found
  double objective = 0.0;   ///< maximized posynomial value at x
  int rounds = 0;           ///< condensation rounds used (best start)
};

/// Builds the AM-GM monomial lower bound of `f` at the positive point `x_bar`.
/// Exposed for testing; requires f(x_bar) > 0.
Monomial condense(const Posynomial& f, const std::vector<double>& x_bar);

/// Maximizes the posynomial `objective` subject to `constraints.is_feasible`,
/// where `constraints` carries the posynomial <= 1 constraint set (its
/// objective, if any, is ignored).  Each start point is refined by iterated
/// condensation; the best feasible result wins.  Within one start point the
/// best-seen iterate across rounds is returned — condensation rounds are not
/// guaranteed monotone under loose inner tolerances, so the latest iterate
/// can be worse than an earlier one.
ScpResult maximize_posynomial_scp(const GpProblem& constraints, const Posynomial& objective,
                                  const std::vector<std::vector<double>>& start_points,
                                  const ScpOptions& options = {});

/// maximize_posynomial_scp with additional *warm* start points (for example a
/// neighboring sweep cell's converged period vector).  Warm starts are added
/// to the start-point set, never replacing the cold starts, and a
/// warm-derived result is adopted only when it beats the cold-start best by
/// more than `options.rel_tol` relatively: within-tolerance differences are
/// ties that go to the cold result, so enabling warm starts cannot perturb
/// the answer through last-ulp objective noise — output is byte-identical
/// with warm starts on or off unless a warm start finds a materially better
/// KKT point (or a feasible one where every cold start failed).  Warm points
/// whose size does not match, or with non-positive entries, are skipped.
ScpResult maximize_posynomial_scp_warm(const GpProblem& constraints, const Posynomial& objective,
                                       const std::vector<std::vector<double>>& start_points,
                                       const std::vector<std::vector<double>>& warm_start_points,
                                       const ScpOptions& options = {});

}  // namespace hydra::gp
