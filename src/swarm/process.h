// The pluggable process backend: how the swarm turns "run shard i" into an
// actual child somewhere.  The supervisor only ever talks to this interface,
// so the local fork/exec pool shipped here is merely the first
// implementation — a job-array or container backend slots in by implementing
// three methods, and every restart/backoff/stall policy above it is reused
// unchanged (tests exercise the supervisor against an in-memory fake the
// same way).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hydra::swarm {

/// What to run: argv[0] is the executable (resolved via PATH like execvp),
/// stdout/stderr are redirected to files so worker output survives the
/// worker and never interleaves with the orchestrator's own streams.
struct WorkerSpec {
  std::vector<std::string> argv;
  std::string stdout_path;  ///< "" inherits the parent's stdout
  std::string stderr_path;  ///< "" inherits the parent's stderr
};

/// How a worker ended.  `signaled` distinguishes "exited with code" from
/// "killed by signal" (SIGKILL'd workers — crashes, stall kills, chaos
/// injection — report signaled=true, value=SIGKILL).
struct ExitStatus {
  bool signaled = false;
  int value = 0;  ///< exit code, or the terminating signal number

  bool success() const { return !signaled && value == 0; }
  std::string describe() const;
};

using WorkerId = std::size_t;

/// Backend contract (single-threaded: the supervisor calls from one thread):
///   * start() launches the worker and returns a handle, throwing
///     std::runtime_error when the launch itself fails;
///   * poll() is non-blocking; it returns the exit status once the worker
///     has ended (reaping it), nullopt while it runs, and keeps returning
///     the same status for an already-reaped worker;
///   * stop() requests immediate termination (SIGKILL-equivalent); the death
///     is still observed through poll(), like any other.
class ProcessBackend {
 public:
  virtual ~ProcessBackend() = default;
  virtual WorkerId start(const WorkerSpec& spec) = 0;
  virtual std::optional<ExitStatus> poll(WorkerId id) = 0;
  virtual void stop(WorkerId id) = 0;
};

/// The local pool: fork + execvp per worker, children reaped synchronously
/// with waitpid(WNOHANG) inside poll() — no SIGCHLD handler, so the backend
/// composes with any host process (gtest binaries included) without
/// installing global signal state.
class LocalProcessBackend : public ProcessBackend {
 public:
  ~LocalProcessBackend() override;

  WorkerId start(const WorkerSpec& spec) override;
  std::optional<ExitStatus> poll(WorkerId id) override;
  void stop(WorkerId id) override;

  /// Test seam: the waitpid used by poll().  Production code never touches
  /// this; tests inject a wrapper that fakes EINTR/ECHILD failures to pin
  /// the retry-vs-loud-crash split without a real stray signal.
  using WaitFn = std::function<int(int pid, int* status, int flags)>;
  void set_wait_fn_for_test(WaitFn fn) { wait_fn_ = std::move(fn); }

 private:
  WorkerId next_id_ = 1;
  std::map<WorkerId, int> running_;       ///< id -> pid
  std::map<WorkerId, ExitStatus> reaped_; ///< id -> final status
  WaitFn wait_fn_;                        ///< empty = real ::waitpid
};

/// Quotes `raw` for a POSIX shell: wrapped in single quotes, embedded single
/// quotes spliced as '\''.  The result survives one level of shell parsing
/// verbatim — which is exactly what `ssh host <cmd>` and `sh -c <cmd>` do.
std::string shell_quote(const std::string& raw);

/// Joins an argv into one shell-quoted command string (the `{cmd}` value).
std::string shell_join(const std::vector<std::string>& argv);

/// Expands a launcher template into the argv actually executed:
///   * the template is split on whitespace into tokens;
///   * every `{host}` occurrence (any token, any position) becomes `host`;
///   * a token equal to `{cmd}` becomes ONE argv element holding the
///     shell-quoted worker command — the shape `ssh {host} {cmd}` and
///     `sh -c {cmd}` both want, since each hands that element to a shell;
///   * a template without `{cmd}` has the worker argv appended verbatim
///     (no shell layer), e.g. `env -` or a setsid/nice wrapper.
/// Throws std::invalid_argument on an empty template or a `{cmd}` embedded
/// inside a larger token (the quoting there is ambiguous — be explicit).
std::vector<std::string> expand_launcher(const std::string& launcher_template,
                                         const std::string& host,
                                         const std::vector<std::string>& worker_argv);

struct RemoteBackendOptions {
  /// Launcher template, e.g. "ssh {host} {cmd}" — see expand_launcher.
  std::string launcher;
  /// Round-robin host pool for `{host}`.  May be empty iff the template
  /// never mentions {host} (a plain local launcher like "sh -c {cmd}").
  std::vector<std::string> hosts;
};

/// The remote seam implementation: every start() expands the launcher
/// template around the worker argv (assigning the next round-robin host) and
/// runs the RESULT as a local child — ssh, a queue submitter, or a plain
/// `sh -c` for CI.  poll()/stop() act on that local launcher process; the
/// orchestrator's checkpoint probes remain the source of truth for remote
/// progress (the shard files must live on a filesystem shared with the
/// hosts), so a wedged remote worker is caught by the stall watchdog even
/// when its launcher process sits healthy.  stop() kills the launcher; ssh
/// propagates the teardown to the remote side on session close (best
/// effort — a truly orphaned remote worker keeps writing its own shard file,
/// which resume/merge handles like any other stale attempt).
class RemoteProcessBackend : public ProcessBackend {
 public:
  /// Validates the template shape up front (empty template, embedded {cmd},
  /// {host} with an empty host list all throw std::invalid_argument).
  explicit RemoteProcessBackend(RemoteBackendOptions options);

  WorkerId start(const WorkerSpec& spec) override;
  std::optional<ExitStatus> poll(WorkerId id) override;
  void stop(WorkerId id) override;

  /// The host the NEXT start() will be assigned ("" when the template takes
  /// no {host}).  Exposed so tests and status displays can show placement.
  std::string next_host() const;

 private:
  RemoteBackendOptions options_;
  bool wants_host_ = false;
  std::size_t next_host_index_ = 0;
  LocalProcessBackend local_;  ///< runs the expanded launcher commands
};

}  // namespace hydra::swarm
